"""Trace utilities: the pipeline span model, validation, ASCII Gantt.

One span model feeds every view of a simulated schedule:
:func:`pipeline_spans` converts a :class:`~repro.sim.pipeline.PipelineResult`'s
per-job stage windows into :class:`~repro.obs.tracer.Span` objects
(lane = ``(job, resource)``), and both the Chrome trace export
(:func:`pipeline_trace_events` / :func:`write_pipeline_trace`, loadable
in Perfetto) and the ASCII Gantt (:func:`render_gantt`) read stage
windows from those spans — a single source of truth, so the picture on
a terminal and the picture in ``chrome://tracing`` cannot drift apart.

The simulator and the closed-form flow-shop recurrence are developed
independently; ``validate_against_recurrence`` cross-checks them, and
the test-suite runs it on every scheme so a bug in either side surfaces
as a disagreement.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.plans import Schedule
from repro.core.scheduling import flow_shop_completion_times
from repro.obs.chrome import chrome_trace_events, validate_chrome_events
from repro.obs.tracer import Span
from repro.sim.pipeline import PipelineResult

__all__ = [
    "validate_against_recurrence",
    "render_gantt",
    "pipeline_spans",
    "pipeline_trace_events",
    "write_pipeline_trace",
]

#: (JobTrace attribute, resource row) in pipeline order. Resource names
#: match the :class:`~repro.sim.engine.Resource` instances the pipeline
#: simulators build, so spans and busy logs speak the same vocabulary.
STAGE_RESOURCES = (("compute", "mobile-cpu"), ("comm", "uplink"), ("cloud", "cloud-gpu"))


def pipeline_spans(result: PipelineResult) -> list[Span]:
    """Per-job per-stage spans of a simulated schedule.

    Each executed stage becomes one completed span on lane
    ``("job <id>", <resource>)`` — in the Chrome export every job is a
    process group with one track per stage, which renders the
    mobile → uplink → cloud staircase of the paper's Fig. 5. The
    ``stage``/``resource``/``cut`` attributes let other renderers (the
    Gantt below) regroup the same windows by resource instead.
    """
    spans: list[Span] = []
    for trace in result.traces:
        for stage, resource in STAGE_RESOURCES:
            window = getattr(trace, stage)
            if window is None:
                continue
            spans.append(
                Span(
                    name=f"job{trace.job_id}/{stage}",
                    start=window.start,
                    end=window.end,
                    attributes={
                        "job": trace.job_id,
                        "stage": stage,
                        "resource": resource,
                        "cut": trace.plan.cut_label or trace.plan.cut_position,
                    },
                    span_id=len(spans),
                    lane=(f"job {trace.job_id}", resource),
                )
            )
    return spans


def pipeline_trace_events(result: PipelineResult) -> list[dict]:
    """The schedule's stage windows as Chrome trace events."""
    return chrome_trace_events(pipeline_spans(result))


def write_pipeline_trace(result: PipelineResult, path: str | Path) -> Path:
    """Export the schedule timeline as Perfetto-loadable JSON."""
    target = Path(path)
    events = pipeline_trace_events(result)
    validate_chrome_events(events)
    target.write_text(json.dumps(events, indent=1) + "\n")
    return target


def validate_against_recurrence(
    result: PipelineResult, schedule: Schedule, tolerance: float = 1e-9
) -> None:
    """Assert the DES timeline matches the 2-stage flow-shop recurrence.

    Only meaningful for ``include_cloud=False`` runs; raises
    :class:`AssertionError` with the first disagreeing job otherwise.
    An empty schedule trivially validates (zero makespan, no jobs).
    """
    if result.metadata.get("include_cloud"):
        raise ValueError("recurrence validation applies to 2-stage simulations only")
    if len(result.traces) != len(schedule.jobs):
        raise AssertionError(
            f"trace/schedule mismatch: {len(result.traces)} traces for "
            f"{len(schedule.jobs)} planned jobs"
        )
    if not schedule.jobs:
        if abs(result.makespan) > tolerance:
            raise AssertionError(
                f"empty schedule but simulated makespan {result.makespan}"
            )
        return
    expected = flow_shop_completion_times([p.stages for p in schedule.jobs])
    for trace, plan, (c1, c2) in zip(result.traces, schedule.jobs, expected):
        sim_c1 = trace.compute.end if trace.compute else 0.0
        sim_c2 = trace.comm.end if trace.comm else sim_c1
        if abs(sim_c1 - c1) > tolerance:
            raise AssertionError(
                f"job {plan.job_id}: compute completion {sim_c1} != analytic {c1}"
            )
        if abs(sim_c2 - c2) > tolerance:
            raise AssertionError(
                f"job {plan.job_id}: pipeline completion {sim_c2} != analytic {c2}"
            )
    analytic_makespan = expected[-1][1]
    if abs(result.makespan - analytic_makespan) > tolerance:
        raise AssertionError(
            f"makespan {result.makespan} != analytic {analytic_makespan}"
        )


def render_gantt(result: PipelineResult, width: int = 72) -> str:
    """ASCII Gantt chart of the mobile / uplink / cloud stage windows.

    One row per resource; ``#`` marks busy time. Stage windows come
    from :func:`pipeline_spans` — the same span model the Chrome
    exporter renders — grouped by resource instead of by job. Intended
    for examples and debugging output, mirroring the paper's
    Fig. 1/Fig. 6 timelines.
    """
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    spans = pipeline_spans(result)
    if not spans or result.makespan <= 0:
        return "(empty timeline)"
    scale = width / result.makespan
    by_resource: dict[str, list[Span]] = {}
    for span in spans:
        by_resource.setdefault(span.attributes["resource"], []).append(span)
    lines = []
    for _, resource in STAGE_RESOURCES:
        row = [" "] * width
        for span in by_resource.get(resource, ()):
            lo = min(int(span.start * scale), width - 1)
            hi = max(min(int(span.end * scale), width), lo + 1)
            for i in range(lo, hi):
                row[i] = "#"
        lines.append(f"{resource:>10s} |{''.join(row)}|")
    lines.append(f"{'':>10s}  0{'':{max(width - 10, 1)}s}{result.makespan * 1e3:8.1f} ms")
    return "\n".join(lines)
