"""Pipelined execution of a schedule on the mobile→uplink→cloud chain.

This is the executable counterpart of the analytic flow-shop formulas:
jobs enter the mobile CPU in schedule order; each job's upload may only
start after its own computation finishes and once the uplink is free;
the cloud stage follows the upload. The simulator is the ground truth
the closed forms are tested against, and the place where assumptions
(negligible cloud time, stage exclusivity) can be *relaxed* to see what
changes — see the 3-stage benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.core.plans import JobPlan, Schedule
from repro.sim.engine import Engine, Resource

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.net.timeline import BandwidthTimeline

__all__ = [
    "StageSpan",
    "JobTrace",
    "PipelineResult",
    "simulate_schedule",
    "simulate_schedule_on_timeline",
]


@dataclass(frozen=True)
class StageSpan:
    """One executed stage of one job."""

    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class JobTrace:
    """Observed timeline of one job."""

    job_id: int
    plan: JobPlan
    compute: StageSpan | None = None
    comm: StageSpan | None = None
    cloud: StageSpan | None = None

    @property
    def completion(self) -> float:
        spans = [s for s in (self.compute, self.comm, self.cloud) if s is not None]
        if not spans:
            raise ValueError(f"job {self.job_id} never executed")
        return max(s.end for s in spans)


@dataclass
class PipelineResult:
    """Simulation output: per-job traces plus resource busy logs."""

    makespan: float
    traces: list[JobTrace]
    mobile: Resource
    uplink: Resource
    cloud: Resource
    metadata: dict = field(default_factory=dict)

    @property
    def average_completion(self) -> float:
        return self.makespan / len(self.traces) if self.traces else 0.0


def simulate_schedule(
    schedule: Schedule,
    include_cloud: bool = False,
    discipline: str = "permutation",
) -> PipelineResult:
    """Execute ``schedule`` on the discrete-event pipeline.

    ``include_cloud=False`` reproduces the paper's 2-stage model (cloud
    time dropped); ``True`` adds the third stage so the "negligible
    cloud" assumption can be quantified rather than assumed.

    ``discipline`` controls zero-length stages:

    * ``"permutation"`` (default) — every job passes through every
      machine in schedule order, holding zero-length stages for zero
      time. This is the classical permutation flow shop the analytic
      recurrence and Johnson's optimality proof assume; the simulator
      matches :func:`repro.core.scheduling.flow_shop_completion_times`
      exactly.
    * ``"eager"`` — zero-length stages are skipped entirely (a
      fully-local job never queues on the uplink, a cloud-only job never
      queues on the CPU). Closer to what a real runtime does; can
      reorder the uplink queue relative to the schedule and therefore
      deviate (in either direction) from the recurrence when zero-length
      stages are present.
    """
    if discipline not in ("permutation", "eager"):
        raise ValueError(f"unknown discipline {discipline!r}")
    engine = Engine()
    mobile = Resource(engine, "mobile-cpu")
    uplink = Resource(engine, "uplink")
    cloud = Resource(engine, "cloud-gpu")
    traces = [JobTrace(job_id=plan.job_id, plan=plan) for plan in schedule.jobs]
    eager = discipline == "eager"

    def start_job(index: int) -> None:
        plan = schedule.jobs[index]
        trace = traces[index]

        def after_compute(start: float, end: float) -> None:
            trace.compute = StageSpan(start, end)
            enter_comm()

        def enter_comm() -> None:
            if eager and plan.comm_time == 0:
                enter_cloud()
            else:
                uplink.acquire(f"job{plan.job_id}/comm", plan.comm_time, after_comm)

        def after_comm(start: float, end: float) -> None:
            trace.comm = StageSpan(start, end)
            enter_cloud()

        def enter_cloud() -> None:
            if include_cloud and plan.cloud_time > 0:
                cloud.acquire(f"job{plan.job_id}/cloud", plan.cloud_time, after_cloud)

        def after_cloud(start: float, end: float) -> None:
            trace.cloud = StageSpan(start, end)

        if eager and plan.compute_time == 0:
            # zero local work: record an empty span at submission time so
            # completion is still well-defined, then go straight to comm
            trace.compute = StageSpan(engine.now, engine.now)
            enter_comm()
        else:
            mobile.acquire(f"job{plan.job_id}/compute", plan.compute_time, after_compute)

    # All jobs are released at time 0 (§3.1); the mobile CPU's FIFO queue
    # realizes the schedule order.
    for index in range(len(schedule.jobs)):
        start_job(index)
    makespan = engine.run()
    return PipelineResult(
        makespan=makespan,
        traces=traces,
        mobile=mobile,
        uplink=uplink,
        cloud=cloud,
        metadata={
            "include_cloud": include_cloud,
            "method": schedule.method,
            "discipline": discipline,
        },
    )


def simulate_schedule_on_timeline(
    schedule: Schedule,
    timeline: "BandwidthTimeline",
    bytes_of: Callable[[JobPlan], float],
    include_cloud: bool = False,
) -> PipelineResult:
    """Execute a schedule over a *time-varying* uplink.

    ``bytes_of`` maps each plan to its upload payload in bytes (e.g.
    ``lambda p: table.transfer_bytes_at(p.cut_position)``); the transfer
    duration is then resolved at the moment the link is granted via
    :meth:`repro.net.timeline.BandwidthTimeline.transfer_end`, so a
    transfer that starts after a rate change pays the new rates. The
    plans' pre-priced ``comm_time`` values are ignored on purpose — this
    simulator answers "what would the committed plan have cost under
    this bandwidth trace".
    """
    engine = Engine()
    mobile = Resource(engine, "mobile-cpu")
    uplink = Resource(engine, "uplink")
    cloud = Resource(engine, "cloud-gpu")
    traces = [JobTrace(job_id=plan.job_id, plan=plan) for plan in schedule.jobs]

    def start_job(index: int) -> None:
        plan = schedule.jobs[index]
        trace = traces[index]
        payload = bytes_of(plan)
        if payload < 0:
            raise ValueError(f"bytes_of returned {payload} for job {plan.job_id}")

        def comm_duration(start: float) -> float:
            return timeline.transfer_end(start, payload) - start

        def after_compute(start: float, end: float) -> None:
            trace.compute = StageSpan(start, end)
            uplink.acquire(f"job{plan.job_id}/comm", comm_duration, after_comm)

        def after_comm(start: float, end: float) -> None:
            trace.comm = StageSpan(start, end)
            if include_cloud and plan.cloud_time > 0:
                cloud.acquire(f"job{plan.job_id}/cloud", plan.cloud_time, after_cloud)

        def after_cloud(start: float, end: float) -> None:
            trace.cloud = StageSpan(start, end)

        mobile.acquire(f"job{plan.job_id}/compute", plan.compute_time, after_compute)

    for index in range(len(schedule.jobs)):
        start_job(index)
    makespan = engine.run()
    return PipelineResult(
        makespan=makespan,
        traces=traces,
        mobile=mobile,
        uplink=uplink,
        cloud=cloud,
        metadata={
            "include_cloud": include_cloud,
            "method": schedule.method,
            "discipline": "permutation",
            "timeline": True,
        },
    )
