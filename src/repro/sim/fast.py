"""Structure-of-arrays DES core: the fast twin of :mod:`repro.sim.engine`.

The heap :class:`~repro.sim.engine.Engine` pops one ``(time, sequence,
callback)`` tuple per event and :class:`~repro.sim.engine.Resource`
allocates a fresh ``_finish`` closure per grant — clean to read, but
every simulated second costs a closure, a ``Busy`` dataclass, and an
f-string label. This module keeps the exact same event *order* while
removing the per-event allocation:

* **Flat event backbone.** Bulk-scheduled events (the open arrival
  stream, deadline timers) live in flat arrays — ``times``, ``seqs``,
  ``kinds``, payload ``args`` — sorted once with a stable numpy argsort
  instead of one heappush each. Same-timestamp events sit contiguously
  in the backbone and are extracted by advancing a cursor, no heap
  traffic at all; only events scheduled *during* the run (grant
  completions, retry/flush timers) go through a small ``heapq``. The
  drain loop merges the two sources by ``(time, seq)``.
* **Integer-coded handler tables.** Hot event kinds — compute/transfer
  complete (resource grants), timers — dispatch as ``(kind, arg)``
  pairs through a handler table (:meth:`FastEngine.register_kind`)
  instead of per-event closures.
* **Closure-free grants.** :class:`FastResource` stores the single
  in-flight grant in slots and completes it through one registered
  kind; ``total_busy_time`` is a running accumulator and busy-interval
  logging is opt-in (``FastEngine(log_busy=False)``), so million-event
  sweeps don't accumulate :class:`~repro.sim.engine.Busy` records.

One sequence counter is shared by ``schedule``, ``schedule_kind`` and
``schedule_many``: given the same logical program, both cores fire
events in the *identical* global ``(time, seq)`` order, which is what
makes fleet reports byte-identical across cores. The heap engine stays
as the parity oracle, exactly like the ``*_scalar`` planning kernels
(``docs/performance.md``); :func:`run_chain` vs :func:`run_chain_scalar`
is the self-contained microbench pair exercising both paths.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.sim.engine import Busy, Engine, Resource, SimulationError

__all__ = [
    "KIND_CALLBACK",
    "ChainResult",
    "FastEngine",
    "FastResource",
    "run_chain",
    "run_chain_scalar",
]

#: Reserved kind 0: ``arg`` is a plain zero-argument callback (what the
#: compatibility :meth:`FastEngine.schedule` path uses).
KIND_CALLBACK = 0


class FastEngine:
    """Event loop with a virtual clock, SoA backbone + handler table.

    API-compatible with :class:`~repro.sim.engine.Engine` (``schedule``,
    ``run(until=)``, ``now``, ``on_advance``, ``pending_events``,
    ``resource``) so the serving/fleet stack runs unchanged on either
    core; the native ``register_kind`` / ``schedule_kind`` /
    ``schedule_many`` surface is what the hot paths use.
    """

    def __init__(self, log_busy: bool = True) -> None:
        self.now = 0.0
        #: Default busy-interval retention for :meth:`resource`.
        self.log_busy = log_busy
        #: Same observer contract as the heap engine: fired with the
        #: clock value before each event callback (the monotone-clock
        #: monitor attaches here on either core).
        self.on_advance: Callable[[float], None] | None = None
        self._sequence = 0
        # runtime-scheduled events: (time, seq, kind, arg)
        self._heap: list[tuple[float, int, int, object]] = []
        # kind -> handler(arg); slot 0 is the plain-callback sentinel
        self._handlers: list = [None]
        # bulk backbone, sorted by (time, seq). numpy does the sort;
        # the drain loop reads plain-list mirrors (scalar indexing on
        # ndarrays costs ~10x a list index).
        self._btime: list[float] = []
        self._bseq: list[int] = []
        self._bkind: list[int] = []
        self._barg: list = []
        self._cursor = 0
        self._running = False

    # ------------------------------------------------------------------
    # native surface
    # ------------------------------------------------------------------
    def register_kind(self, handler: Callable[[object], None]) -> int:
        """Install ``handler`` and return its integer event kind."""
        self._handlers.append(handler)
        return len(self._handlers) - 1

    def schedule_kind(self, delay: float, kind: int, arg: object = None) -> None:
        """Fire ``handlers[kind](arg)`` at ``now + delay``."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        heapq.heappush(self._heap, (self.now + delay, self._sequence, kind, arg))
        self._sequence += 1

    def schedule_many(
        self,
        times: Sequence[float] | np.ndarray,
        kind: int | Sequence[int] = KIND_CALLBACK,
        args: Sequence | None = None,
    ) -> None:
        """Bulk-schedule events at absolute ``times`` (one stable sort).

        Sequence numbers are assigned in input order, so equal-time
        entries fire in the order given — the same tie-break a loop of
        ``schedule`` calls would produce. ``kind`` is one kind for all
        events or a per-event sequence; ``args`` defaults to ``None``
        per event (kind 0 requires callables).
        """
        times = np.asarray(times, dtype=float)
        n = len(times)
        if n == 0:
            return
        if float(times.min()) < self.now:
            raise SimulationError(
                f"bulk event at {times.min()} is before now={self.now}"
            )
        kinds = [int(kind)] * n if np.isscalar(kind) else [int(k) for k in kind]
        if len(kinds) != n:
            raise SimulationError(f"{len(kinds)} kinds for {n} times")
        arglist = [None] * n if args is None else list(args)
        if len(arglist) != n:
            raise SimulationError(f"{len(arglist)} args for {n} times")
        if self._running:
            # the drain loop holds references to the list mirrors; fall
            # back to per-event pushes instead of rebinding them mid-run
            push, seq = heapq.heappush, self._sequence
            for i, t in enumerate(times.tolist()):
                push(self._heap, (t, seq, kinds[i], arglist[i]))
                seq += 1
            self._sequence = seq
            return
        first = self._sequence
        self._sequence += n
        order = np.argsort(times, kind="stable")
        order_list = order.tolist()
        new_time = times[order].tolist()
        new_seq = [first + i for i in order_list]
        new_kind = [kinds[i] for i in order_list]
        new_arg = [arglist[i] for i in order_list]
        if self._cursor < len(self._btime):
            # merge with the unconsumed backbone remainder by (time, seq)
            old_time = self._btime[self._cursor :]
            old_seq = self._bseq[self._cursor :]
            old_kind = self._bkind[self._cursor :]
            old_arg = self._barg[self._cursor :]
            all_time = np.asarray(old_time + new_time)
            all_seq = np.asarray(old_seq + new_seq)
            merged = np.lexsort((all_seq, all_time))
            merged_list = merged.tolist()
            kinds_all = old_kind + new_kind
            args_all = old_arg + new_arg
            self._btime = all_time[merged].tolist()
            self._bseq = all_seq[merged].tolist()
            self._bkind = [kinds_all[i] for i in merged_list]
            self._barg = [args_all[i] for i in merged_list]
        else:
            self._btime, self._bseq = new_time, new_seq
            self._bkind, self._barg = new_kind, new_arg
        self._cursor = 0

    # ------------------------------------------------------------------
    # Engine-compatible surface
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at ``now + delay``."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        heapq.heappush(
            self._heap, (self.now + delay, self._sequence, KIND_CALLBACK, callback)
        )
        self._sequence += 1

    def resource(self, name: str, log_busy: bool | None = None) -> "FastResource":
        """A :class:`FastResource` bound to this engine (seam twin of
        :meth:`repro.sim.engine.Engine.resource`)."""
        return FastResource(
            self, name, log_busy=self.log_busy if log_busy is None else log_busy
        )

    def run(self, until: float | None = None) -> float:
        """Drain both event sources in ``(time, seq)`` order.

        Like the heap core, a deferred event (``time > until``) is
        peeked and left in place — cursor not advanced, heap not popped
        — so a resumed run replays it with its original sequence
        number, ahead of any same-timestamp event scheduled later.
        """
        heap = self._heap
        handlers = self._handlers
        btime, bseq, bkind, barg = self._btime, self._bseq, self._bkind, self._barg
        cursor = self._cursor
        length = len(btime)
        limit = float("inf") if until is None else until
        now = self.now
        heappop = heapq.heappop
        # read once per run: observers (the monotone-clock monitor)
        # attach before `run`, so re-reading per event buys nothing
        on_advance = self.on_advance
        self._running = True
        try:
            while True:
                # pick the earlier source by (time, seq); a backbone
                # batch of same-timestamp events drains through the
                # cursor with no heap traffic at all
                if cursor < length:
                    time = btime[cursor]
                    head = heap[0] if heap else None
                    if head is not None and (
                        head[0] < time or (head[0] == time and head[1] < bseq[cursor])
                    ):
                        time = head[0]
                        if time > limit:
                            break
                        heappop(heap)
                        kind = head[2]
                        arg = head[3]
                    else:
                        if time > limit:
                            break
                        kind = bkind[cursor]
                        arg = barg[cursor]
                        cursor += 1
                elif heap:
                    head = heap[0]
                    time = head[0]
                    if time > limit:
                        break
                    heappop(heap)
                    kind = head[2]
                    arg = head[3]
                else:
                    break
                if time > now:
                    now = time
                    self.now = now
                elif time < now - 1e-12:
                    raise SimulationError(f"event at {time} is before now={now}")
                if on_advance is not None:
                    on_advance(now)
                if kind:
                    handlers[kind](arg)
                else:
                    arg()
        finally:
            self._running = False
            if cursor == length:
                # fully consumed: release the mirrors in one shot
                del btime[:], bseq[:], bkind[:], barg[:]
                cursor = 0
            self._cursor = cursor
        return self.now

    @property
    def pending_events(self) -> int:
        return len(self._heap) + len(self._btime) - self._cursor


class FastResource:
    """Exclusive FIFO resource on the fast core, closure-free grants.

    Same contract as :class:`~repro.sim.engine.Resource` — ``acquire``
    enqueues ``(label, duration, on_done)``, grants are FIFO, callable
    durations are priced at grant time, and completion runs in the
    exact heap-core order (log busy, free the resource, fire
    ``on_done``, pump) — but the in-flight grant lives in slots on the
    resource and completes through one registered event kind, so a
    grant allocates no closure and, with logging off, no ``Busy``.
    """

    __slots__ = (
        "engine",
        "name",
        "busy_log",
        "log_busy",
        "_queue",
        "_busy",
        "_busy_time",
        "_label",
        "_start",
        "_on_done",
        "_kind",
    )

    def __init__(self, engine: FastEngine, name: str, log_busy: bool = True) -> None:
        self.engine = engine
        self.name = name
        self.busy_log: list[Busy] = []
        self.log_busy = log_busy
        self._queue: deque = deque()
        self._busy = False
        self._busy_time = 0.0
        self._label: str | None = None
        self._start = 0.0
        self._on_done: Callable[[float, float], None] | None = None
        self._kind = engine.register_kind(self._finish)

    def acquire(
        self,
        label: str,
        duration: float | Callable[[float], float],
        on_done: Callable[[float, float], None] | None = None,
    ) -> None:
        if not callable(duration) and duration < 0:
            raise SimulationError(f"{self.name}: negative duration {duration}")
        self._queue.append((label, duration, on_done))
        if not self._busy:
            self._pump()

    def _pump(self) -> None:
        if self._busy or not self._queue:
            return
        label, duration, on_done = self._queue.popleft()
        self._busy = True
        start = self.engine.now
        if callable(duration):
            duration = duration(start)
            if duration < 0:
                raise SimulationError(
                    f"{self.name}: callable duration returned {duration}"
                )
        self._label = label
        self._start = start
        self._on_done = on_done
        self.engine.schedule_kind(duration, self._kind)

    def _finish(self, _arg: object) -> None:
        end = self.engine.now
        start = self._start
        on_done = self._on_done
        self._busy_time += end - start
        if self.log_busy:
            self.busy_log.append(Busy(start=start, end=end, label=self._label))
        self._busy = False
        self._label = None
        self._on_done = None
        if on_done is not None:
            on_done(start, end)
        self._pump()

    @property
    def total_busy_time(self) -> float:
        """Running accumulator — O(1), independent of ``log_busy``."""
        return self._busy_time

    def utilization(self, horizon: float) -> float:
        """Fraction of ``[0, horizon]`` this resource was busy."""
        if horizon <= 0:
            raise ValueError(f"horizon must be > 0, got {horizon}")
        return self._busy_time / horizon


# ----------------------------------------------------------------------
# the gateway-dispatch chain: one workload, two cores
# ----------------------------------------------------------------------
@dataclass
class ChainResult:
    """Outcome of one chain run (identical across cores by design)."""

    completions: list[float]          # -1.0 where never completed
    expired: list[bool]               # deadline fired before completion
    busy_time: list[float]            # per-stage granted time
    events: int                       # total events the run dispatched

    def checksum(self) -> tuple:
        """Order-sensitive digest the benches parity-assert on."""
        return (tuple(self.completions), tuple(self.expired), tuple(self.busy_time))


def _chain_events(n: int, stages: int, deadlines) -> int:
    # n arrivals + n deadline timers (if any) + one grant end per stage
    return n * (stages + 1) + (n if deadlines is not None else 0)


def run_chain(
    arrivals: Sequence[float] | np.ndarray,
    durations: Sequence[Sequence[float] | np.ndarray],
    deadlines: Sequence[float] | np.ndarray | None = None,
    engine: FastEngine | None = None,
) -> ChainResult:
    """Request-lifecycle chain on the fast core's native path.

    Request ``i`` arrives at ``arrivals[i]`` and flows through the
    exclusive FIFO stages (mobile CPU → uplink → cloud GPU in the
    serving stack's shape), holding stage ``s`` for
    ``durations[s][i]``; an optional deadline timer marks requests
    still unfinished at their deadline. Grants are index updates into
    per-stage state arrays (``busy``, queue + head cursor, running
    busy-time accumulators); arrivals and deadline timers ride the
    bulk backbone; grant completions dispatch through registered kinds.
    """
    engine = engine if engine is not None else FastEngine(log_busy=False)
    arrivals = np.asarray(arrivals, dtype=float)
    stage_durations = [np.asarray(d, dtype=float).tolist() for d in durations]
    n = len(arrivals)
    stages = len(stage_durations)
    last = stages - 1
    completions = [-1.0] * n
    expired = [False] * n
    # per-stage SoA state: one slot per stage, index updates per grant.
    # Grant-end pushes go straight onto the engine heap with the shared
    # sequence counter — same (time, seq) stream `schedule_kind` would
    # produce, minus a call layer on the hottest edge.
    busy = [False] * stages
    queues: list[list[int]] = [[] for _ in range(stages)]
    heads = [0] * stages
    current = [-1] * stages
    started = [0.0] * stages
    busy_time = [0.0] * stages
    heap = engine._heap
    heappush = heapq.heappush
    first_durations = stage_durations[0]

    def arrive(req: int) -> None:
        if busy[0]:
            queues[0].append(req)
        else:
            busy[0] = True
            current[0] = req
            now = engine.now
            started[0] = now
            seq = engine._sequence
            heappush(heap, (now + first_durations[req], seq, end_kind, 0))
            engine._sequence = seq + 1

    def stage_end(stage: int) -> None:
        now = engine.now
        req = current[stage]
        busy_time[stage] += now - started[stage]
        if stage < last:
            nxt = stage + 1
            if busy[nxt]:
                queues[nxt].append(req)
            else:
                busy[nxt] = True
                current[nxt] = req
                started[nxt] = now
                seq = engine._sequence
                heappush(heap, (now + stage_durations[nxt][req], seq, end_kind, nxt))
                engine._sequence = seq + 1
        else:
            completions[req] = now
        queue = queues[stage]
        head = heads[stage]
        if head < len(queue):
            nxt_req = queue[head]
            heads[stage] = head + 1
            current[stage] = nxt_req
            started[stage] = now
            seq = engine._sequence
            heappush(heap, (now + stage_durations[stage][nxt_req], seq, end_kind, stage))
            engine._sequence = seq + 1
        else:
            busy[stage] = False
            if head:
                queue.clear()
                heads[stage] = 0

    def expire(req: int) -> None:
        if completions[req] < 0.0:
            expired[req] = True

    arrive_kind = engine.register_kind(arrive)
    end_kind = engine.register_kind(stage_end)
    ids = list(range(n))
    if deadlines is None:
        engine.schedule_many(arrivals, arrive_kind, ids)
    else:
        # one bulk call, one stable sort: input order (arrivals first,
        # then timers) assigns the same sequence numbers the scalar
        # side's two schedule loops produce
        expire_kind = engine.register_kind(expire)
        engine.schedule_many(
            np.concatenate([arrivals, np.asarray(deadlines, dtype=float)]),
            [arrive_kind] * n + [expire_kind] * n,
            ids + ids,
        )
    engine.run()
    return ChainResult(
        completions=completions,
        expired=expired,
        busy_time=busy_time,
        events=_chain_events(n, stages, deadlines),
    )


def run_chain_scalar(
    arrivals: Sequence[float] | np.ndarray,
    durations: Sequence[Sequence[float] | np.ndarray],
    deadlines: Sequence[float] | np.ndarray | None = None,
    engine: Engine | None = None,
) -> ChainResult:
    """The identical chain on the heap core — the parity oracle.

    Deliberately written the way the serving gateway drives the heap
    engine: per-request closures over :meth:`Resource.acquire`,
    f-string grant labels, one ``schedule`` per arrival and deadline —
    so the bench ratio measures the event cores, same program, same
    ``(time, seq)`` interleaving, not two different simulations.
    """
    engine = engine if engine is not None else Engine()
    arrivals = np.asarray(arrivals, dtype=float).tolist()
    stage_durations = [np.asarray(d, dtype=float).tolist() for d in durations]
    n = len(arrivals)
    stages = len(stage_durations)
    resources = [Resource(engine, f"stage{s}") for s in range(stages)]
    completions = [-1.0] * n
    expired = [False] * n

    def submit(req: int) -> None:
        def stage_done(stage: int):
            def done(start: float, end: float) -> None:
                nxt = stage + 1
                if nxt < stages:
                    resources[nxt].acquire(
                        f"req{req}/s{nxt}", stage_durations[nxt][req], stage_done(nxt)
                    )
                else:
                    completions[req] = end
            return done

        resources[0].acquire(f"req{req}/s0", stage_durations[0][req], stage_done(0))

    def expire(req: int) -> None:
        if completions[req] < 0.0:
            expired[req] = True

    for i in range(n):
        engine.schedule(arrivals[i] - engine.now, lambda i=i: submit(i))
    if deadlines is not None:
        for i, deadline in enumerate(np.asarray(deadlines, dtype=float).tolist()):
            engine.schedule(deadline - engine.now, lambda i=i: expire(i))
    engine.run()
    return ChainResult(
        completions=completions,
        expired=expired,
        busy_time=[r.total_busy_time for r in resources],
        events=_chain_events(n, stages, deadlines),
    )
