"""Discrete-event simulation of the mobile→uplink→cloud pipeline."""

from repro.sim.engine import Busy, Engine, Resource, SimulationError
from repro.sim.pipeline import (
    JobTrace,
    PipelineResult,
    StageSpan,
    simulate_schedule,
    simulate_schedule_on_timeline,
)
from repro.sim.perturb import (
    executed_makespan,
    perturbed_schedule,
    straggler_schedule,
    two_phase_makespan,
)
from repro.sim.trace import render_gantt, validate_against_recurrence

__all__ = [
    "Busy",
    "Engine",
    "JobTrace",
    "PipelineResult",
    "Resource",
    "SimulationError",
    "StageSpan",
    "executed_makespan",
    "perturbed_schedule",
    "render_gantt",
    "straggler_schedule",
    "two_phase_makespan",
    "simulate_schedule",
    "simulate_schedule_on_timeline",
    "validate_against_recurrence",
]
