"""Discrete-event simulation of the mobile→uplink→cloud pipeline."""

from repro.sim.engine import Busy, Engine, Resource, SimulationError
from repro.sim.fast import (
    ChainResult,
    FastEngine,
    FastResource,
    run_chain,
    run_chain_scalar,
)
from repro.sim.perturb import (
    executed_makespan,
    perturbed_schedule,
    straggler_schedule,
    two_phase_makespan,
)
from repro.sim.pipeline import (
    JobTrace,
    PipelineResult,
    StageSpan,
    simulate_schedule,
    simulate_schedule_on_timeline,
)
from repro.sim.trace import render_gantt, validate_against_recurrence

__all__ = [
    "Busy",
    "ChainResult",
    "Engine",
    "FastEngine",
    "FastResource",
    "JobTrace",
    "PipelineResult",
    "Resource",
    "SimulationError",
    "StageSpan",
    "executed_makespan",
    "perturbed_schedule",
    "render_gantt",
    "run_chain",
    "run_chain_scalar",
    "simulate_schedule",
    "simulate_schedule_on_timeline",
    "straggler_schedule",
    "two_phase_makespan",
    "validate_against_recurrence",
]
