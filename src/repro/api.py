"""Stable user-facing facade over the reproduction.

One import serves the common workflow — pick a zoo model, pick a
bandwidth, plan a job set, compare schemes — without knowing which
internal package owns each piece:

>>> from repro.api import plan, compare, list_models
>>> schedule = plan("alexnet", n=100, bandwidth=10.0)
>>> schedule.makespan < compare("alexnet", n=100, bandwidth=10.0)["LO"].makespan
True

``plan``/``compare`` route through a shared module-level
:class:`~repro.engine.PlanningEngine`, so repeated calls for the same
model hit the memoized structure caches. Construct your own engine for
custom devices or isolated cache statistics.

The old deep import paths (``repro.core.jps``, ``repro.nn.zoo``, ...)
keep working; this module only re-exports, it does not move anything.
"""

from __future__ import annotations

from repro.cloud import (
    BATCHING_POLICIES,
    GPU_ASSIGNMENTS,
    BatchingServer,
    CloudConfig,
    CloudGpuModel,
    LeastQueuedRouter,
)
from repro.core.joint import SplitMode, Structure, jps, jps_dag
from repro.core.plans import JobPlan, Schedule
from repro.dag.metrics import DuplicationMetrics, duplication_metrics
from repro.dag.oracle import (
    DagInstance,
    check_dag_instance,
    dag_exhaustive_optimal,
    random_dag,
)
from repro.dag.partition import (
    DagCutTable,
    dag_cut_table,
    dag_pareto_cuts,
    dag_schedule_from_table,
    duplication_schedule,
    partition_dag,
)
from repro.engine import CacheStats, PlanningEngine
from repro.extensions.online import (
    OnlineJpsScheduler,
    ReleasedJob,
    clairvoyant_makespan,
    offline_lower_bound,
)
from repro.faults import (
    Blackout,
    ClientOutage,
    CostMisestimation,
    FaultInjector,
    FaultPlan,
    MonotoneClockMonitor,
    RateSpike,
    ResiliencePolicy,
    TransferCorruption,
    accounting_violations,
    check_instance,
    default_fault_scenario,
    exhaustive_optimal,
    run_fault_scenario,
)
from repro.fleet import (
    ENGINE_CORES,
    SCENARIO_SLO,
    SLO_SCENARIOS,
    AdmissionConfig,
    ChannelConfig,
    FaultsConfig,
    FleetGateway,
    ObservabilityConfig,
    PlacementConfig,
    ServerSpec,
    SystemConfig,
    SystemReport,
    WorkloadConfig,
    blackout_fleet_scenario,
    capacity_scenario,
    contended_cloud_scenario,
    default_fleet,
    fleet_accounting_violations,
    run_system,
    slo_acceptance_scenario,
    steady_fleet_scenario,
    with_slo_telemetry,
)
from repro.net.bandwidth import (
    FOUR_G,
    PRESETS,
    THREE_G,
    WIFI,
    BandwidthPreset,
    TrafficShaper,
)
from repro.net.channel import Channel
from repro.net.timeline import BandwidthTimeline
from repro.nn.network import Network
from repro.nn.zoo import MODELS, get_model
from repro.obs import (
    InstantEvent,
    NullTracer,
    SloBoard,
    SloConfig,
    Span,
    TelemetryHub,
    TimeSeries,
    Tracer,
    chrome_trace_events,
    default_slos,
    exposition_from_snapshot,
    parse_prometheus,
    render_timeline,
    to_prometheus,
    validate_chrome_events,
    watch_table,
    well_formed,
    write_chrome_trace,
)
from repro.profiling.device import DeviceModel, gtx1080_server, raspberry_pi_4
from repro.serving import (
    AdaptiveChannelEstimator,
    ClientSpec,
    Gateway,
    MetricsRegistry,
    Request,
    ScenarioConfig,
    default_scenario,
    run_scenario,
)
from repro.sim.trace import pipeline_spans, write_pipeline_trace
from repro.utils.units import mbps

__all__ = [
    "plan",
    "compare",
    "list_models",
    "default_engine",
    "as_channel",
    "PlanningEngine",
    "CacheStats",
    # online scheduling (beyond-the-paper release times)
    "OnlineJpsScheduler",
    "ReleasedJob",
    "clairvoyant_makespan",
    "offline_lower_bound",
    # serving gateway
    "Gateway",
    "AdaptiveChannelEstimator",
    "MetricsRegistry",
    "ClientSpec",
    "Request",
    "ScenarioConfig",
    "default_scenario",
    "run_scenario",
    "BandwidthTimeline",
    # fleet serving behind the unified scenario API (repro.fleet)
    "SystemConfig",
    "SystemReport",
    "WorkloadConfig",
    "ServerSpec",
    "PlacementConfig",
    "AdmissionConfig",
    "ChannelConfig",
    "FaultsConfig",
    "ObservabilityConfig",
    "FleetGateway",
    "run_system",
    "ENGINE_CORES",
    "default_fleet",
    "capacity_scenario",
    "fleet_accounting_violations",
    "steady_fleet_scenario",
    "blackout_fleet_scenario",
    "with_slo_telemetry",
    "slo_acceptance_scenario",
    "SCENARIO_SLO",
    "SLO_SCENARIOS",
    # cloud-side batching (repro.cloud)
    "CloudGpuModel",
    "BatchingServer",
    "CloudConfig",
    "BATCHING_POLICIES",
    "GPU_ASSIGNMENTS",
    "LeastQueuedRouter",
    "contended_cloud_scenario",
    # fault injection + resilience (repro.faults)
    "FaultPlan",
    "FaultInjector",
    "ResiliencePolicy",
    "Blackout",
    "RateSpike",
    "TransferCorruption",
    "ClientOutage",
    "CostMisestimation",
    "default_fault_scenario",
    "run_fault_scenario",
    "accounting_violations",
    "MonotoneClockMonitor",
    "check_instance",
    "exhaustive_optimal",
    # observability (repro.obs)
    "Tracer",
    "NullTracer",
    "Span",
    "InstantEvent",
    "well_formed",
    "chrome_trace_events",
    "write_chrome_trace",
    "validate_chrome_events",
    "to_prometheus",
    "exposition_from_snapshot",
    "parse_prometheus",
    "pipeline_spans",
    "write_pipeline_trace",
    # windowed telemetry + SLO alerting (repro.obs)
    "TimeSeries",
    "TelemetryHub",
    "SloConfig",
    "SloBoard",
    "default_slos",
    "render_timeline",
    "watch_table",
    # true DAG partitioning + its differential oracle (repro.dag)
    "jps_dag",
    "partition_dag",
    "DagCutTable",
    "dag_cut_table",
    "dag_pareto_cuts",
    "dag_schedule_from_table",
    "duplication_schedule",
    "DuplicationMetrics",
    "duplication_metrics",
    "DagInstance",
    "check_dag_instance",
    "dag_exhaustive_optimal",
    "random_dag",
    "Schedule",
    "JobPlan",
    "Structure",
    "SplitMode",
    "Channel",
    "BandwidthPreset",
    "TrafficShaper",
    "THREE_G",
    "FOUR_G",
    "WIFI",
    "PRESETS",
    "Network",
    "DeviceModel",
    "raspberry_pi_4",
    "gtx1080_server",
    "MODELS",
    "get_model",
    "jps",
]

#: Shared engine behind the module-level ``plan``/``compare`` helpers.
_ENGINE: PlanningEngine | None = None


def default_engine() -> PlanningEngine:
    """The lazily-built engine the module-level helpers plan through."""
    global _ENGINE
    if _ENGINE is None:
        _ENGINE = PlanningEngine()
    return _ENGINE


def as_channel(bandwidth: Channel | BandwidthPreset | float) -> Channel:
    """Coerce a bandwidth spec to a :class:`Channel`.

    Accepts a ready channel, a named preset (3G/4G/Wi-Fi), or a raw
    uplink rate in Mbps (downlink assumed symmetric-ish at 2x, matching
    the experiment environment's convention).
    """
    if isinstance(bandwidth, Channel):
        return bandwidth
    if isinstance(bandwidth, BandwidthPreset):
        return Channel(shaper=TrafficShaper.from_preset(bandwidth))
    return Channel(
        shaper=TrafficShaper(
            uplink_bps=mbps(float(bandwidth)), downlink_bps=mbps(2 * float(bandwidth))
        )
    )


def plan(
    model: str | Network,
    n: int = 100,
    bandwidth: Channel | BandwidthPreset | float = 10.0,
    scheme: str = "JPS",
    structure: str | Structure = Structure.AUTO,
    split: str | SplitMode = SplitMode.EXACT,
    engine: PlanningEngine | None = None,
) -> Schedule:
    """Plan ``n`` inference jobs of ``model`` at the given bandwidth.

    ``model`` is a zoo name (see :func:`list_models`) or a
    :class:`Network`; ``bandwidth`` a :class:`Channel`, a preset, or an
    uplink rate in Mbps. ``scheme`` is ``"JPS"`` or a baseline
    (``"LO"``, ``"CO"``, ``"PO"``); ``structure`` and ``split`` select
    the JPS variant (:class:`Structure`, :class:`SplitMode`).
    """
    chosen = engine or default_engine()
    return chosen.plan(
        model, n, as_channel(bandwidth), scheme=scheme, structure=structure, split=split
    )


def compare(
    model: str | Network,
    n: int = 100,
    bandwidth: Channel | BandwidthPreset | float = 10.0,
    schemes: list[str] | None = None,
    engine: PlanningEngine | None = None,
) -> dict[str, Schedule]:
    """All schemes side by side on shared memoized tables."""
    chosen = engine or default_engine()
    return chosen.compare(model, n, as_channel(bandwidth), schemes=schemes)


def list_models() -> list[str]:
    """Zoo model names accepted by :func:`plan` and :func:`compare`."""
    return sorted(MODELS)
