"""Batch-size-dependent latency model of one shared cloud GPU.

The planner prices the cloud stage of a request as a *solo* inference:
``CostTable.cloud_rest(cut)`` seconds of exclusive GPU time. Real
accelerators do not work that way — a large share of a single-image
inference is *per-launch* cost (kernel launches, framework dispatch,
weight/activation staging) that is paid once per **batch**, not once
per image. Executing ``b`` requests together therefore costs far less
than ``b`` solo inferences:

    latency(batch) = max_i fixed_i  +  sum_i marginal_i

where each member's solo time ``u_i`` splits into a fixed per-launch
part ``o_i = overhead_fraction * u_i`` and a marginal per-image part
``m_i = u_i - o_i``. The split is exact in floating point — a batch of
one costs *exactly* its solo time, which is what makes the
``serve_now`` policy byte-identical to the unbatched gateway path (the
parity lock in ``benchmarks/bench_cloud.py``).

``overhead_fraction`` is calibrated the same way the per-layer tables
of :mod:`repro.profiling.device` are: per-layer kernel-launch overhead
(``DeviceModel.layer_overhead``, 20 µs on the GTX1080 profile) summed
over the network's layers, divided by the network's total predicted
cloud time — the share of a solo inference that batching can amortize.
See :func:`CloudGpuModel.calibrate` and docs/costmodel.md.

``speedup`` scales the *executed* cloud times without the planner's
knowledge (the planner keeps pricing the calibrated profile), which is
exactly the ISSUE's contended-cloud setting: the shared GPU the cost
model cannot see.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.utils.validation import require_positive

__all__ = ["CloudGpuModel"]


@dataclass(frozen=True)
class CloudGpuModel:
    """Analytic throughput curve of one batching cloud GPU.

    ``overhead_fraction`` — share of a solo inference that is per-batch
    fixed cost (amortized by batching); ``speedup`` — uniform scale of
    executed cloud times versus the planner's calibrated profile
    (``0.1`` = a 10x slower GPU than the cost model assumes).
    """

    name: str = "batching-gpu"
    overhead_fraction: float = 0.35
    speedup: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.overhead_fraction < 1.0:
            raise ValueError(
                f"overhead_fraction must be in [0, 1), got {self.overhead_fraction}"
            )
        require_positive(self.speedup, "speedup")

    # ------------------------------------------------------------------
    # the latency decomposition
    # ------------------------------------------------------------------
    def unit_time(self, solo_time: float) -> float:
        """Executed solo time of one request on *this* GPU.

        ``solo_time`` is the planner-priced cloud stage
        (``CostTable.cloud_rest``); division by 1.0 is exact, so the
        default model executes exactly what the planner priced.
        """
        if solo_time < 0:
            raise ValueError(f"solo_time must be >= 0, got {solo_time}")
        return solo_time / self.speedup

    def fixed_part(self, unit_time: float) -> float:
        """Per-batch launch cost embedded in one executed solo time."""
        return self.overhead_fraction * unit_time

    def marginal_part(self, unit_time: float) -> float:
        """Per-image cost of one request (``unit - fixed``, exact)."""
        return unit_time - self.fixed_part(unit_time)

    def batch_latency(self, unit_times: Sequence[float]) -> float:
        """Service time of one coalesced batch of executed solo times.

        ``max(fixed) + sum(marginal)``: the launch cost is paid once
        (by the most launch-heavy member), every image pays its
        marginal cost. A batch of one reduces to ``fixed + marginal ==
        unit`` with no floating-point drift.
        """
        if not unit_times:
            raise ValueError("batch_latency needs at least one request")
        return max(self.fixed_part(u) for u in unit_times) + sum(
            self.marginal_part(u) for u in unit_times
        )

    def amortized_latency(self, solo_time: float, batch_size: int) -> float:
        """Per-request service time inside a homogeneous batch."""
        require_positive(batch_size, "batch_size")
        return self.batch_latency([self.unit_time(solo_time)] * batch_size) / batch_size

    def throughput_curve(
        self, solo_time: float, max_batch: int = 16
    ) -> list[dict[str, float]]:
        """Batch-size sweep: latency, per-item latency, items/s.

        The docs/bench artifact: shows the classic saturating curve —
        throughput approaches ``1 / marginal`` as the fixed launch cost
        amortizes across the batch.
        """
        require_positive(max_batch, "max_batch")
        unit = self.unit_time(solo_time)
        curve = []
        for size in range(1, max_batch + 1):
            latency = self.batch_latency([unit] * size)
            curve.append(
                {
                    "batch_size": size,
                    "latency": latency,
                    "per_item": latency / size,
                    "items_per_s": size / latency if latency > 0 else float("inf"),
                }
            )
        return curve

    # ------------------------------------------------------------------
    # calibration + wire format
    # ------------------------------------------------------------------
    @classmethod
    def calibrate(
        cls,
        model: str = "alexnet",
        device=None,
        speedup: float = 1.0,
    ) -> "CloudGpuModel":
        """Derive ``overhead_fraction`` from a per-layer device profile.

        Every non-input layer of ``model`` pays ``layer_overhead``
        seconds of kernel-launch cost on ``device`` (default: the
        calibrated GTX1080 profile); the fraction of the network's
        total predicted time that this launch cost represents is
        exactly the batchable share of a solo inference.
        """
        from repro.nn.zoo import get_model
        from repro.profiling.device import gtx1080_server

        device = device or gtx1080_server()
        network = get_model(model)
        nodes = [n for n in network.nodes() if n.kind != "input"]
        total = sum(device.layer_time(n) for n in nodes)
        fixed = device.layer_overhead * len(nodes)
        if total <= 0:
            raise ValueError(f"model {model!r} has no cloud-executable time")
        fraction = min(fixed / total, 0.999)
        return cls(
            name=f"{device.name}-{model}-batching",
            overhead_fraction=fraction,
            speedup=speedup,
        )

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "overhead_fraction": self.overhead_fraction,
            "speedup": self.speedup,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CloudGpuModel":
        return cls(
            name=data.get("name", "batching-gpu"),
            overhead_fraction=data.get("overhead_fraction", 0.35),
            speedup=data.get("speedup", 1.0),
        )
