"""Cloud-side batching: shared GPU model, hold-and-batch server, config.

The paper treats cloud compute as negligible; at fleet scale it is the
bottleneck the cost model cannot see. This package models the cloud GPU
as a *shared batching server*:

* :class:`~repro.cloud.model.CloudGpuModel` — batch-size-dependent
  latency curves (``latency(b) = fixed launch overhead + b × marginal
  cost``), calibrated from the per-layer device profiles and
  JSON-round-trippable like :class:`~repro.profiling.device.DeviceModel`;
* :class:`~repro.cloud.server.BatchingServer` — a hold-and-batch queue
  on the simulation engine (``max_batch`` / ``max_wait`` knobs, three
  dispatch policies) with exact per-request span accounting;
* :class:`~repro.cloud.config.CloudConfig` — the opt-in
  ``SystemConfig`` block that makes N gateways contend for K GPUs.

See docs/serving.md (cloud batching) and docs/costmodel.md (curve
derivation). Batching is strictly opt-in: without a ``CloudConfig``
every run is byte-identical to the pre-batching system.
"""

from repro.cloud.config import CloudConfig
from repro.cloud.model import CloudGpuModel
from repro.cloud.server import (
    BATCHING_POLICIES,
    GPU_ASSIGNMENTS,
    BatchingServer,
    LeastQueuedRouter,
)

__all__ = [
    "BATCHING_POLICIES",
    "GPU_ASSIGNMENTS",
    "BatchingServer",
    "CloudConfig",
    "CloudGpuModel",
    "LeastQueuedRouter",
]
