"""Hold-and-batch GPU server on the discrete-event engine.

A :class:`BatchingServer` wraps one exclusive
:class:`~repro.sim.engine.Resource` (the GPU) with a *hold queue*:
uploaded requests wait up to ``max_wait`` seconds (or until ``max_batch``
of them have gathered) and then execute as one coalesced batch whose
service time comes from :class:`~repro.cloud.model.CloudGpuModel`.
Batches formed while the GPU is busy queue FIFO on the resource, so
N gateways sharing one server contend exactly like any other resource
users.

Three dispatch policies (:data:`BATCHING_POLICIES`):

* ``serve_now`` — every request launches immediately as a batch of
  one. With the default model this is *event-for-event identical* to
  the unbatched gateway path (the bench parity lock).
* ``batch`` — hold-and-batch: flush on ``max_batch`` or on the
  ``max_wait`` timer armed by the first held request.
* ``adaptive`` — serve-now vs. hold-and-batch chosen against deadline
  slack: a request holds only if its slack covers the worst-case wait
  (``max_wait`` + current GPU backlog + its own service time);
  otherwise the whole hold flushes immediately so nobody misses a
  deadline waiting for company.

Per-request accounting stays exact: every member's completion callback
fires with the *batch* window ``(start, end)``, the engine invokes the
callbacks in submission order, and the batch log records who rode in
which batch — what the property suite audits (every submitted request
lands in exactly one batch, sizes never exceed ``max_batch``).
"""

from __future__ import annotations

import math
from typing import Callable

from repro.cloud.model import CloudGpuModel
from repro.obs.timeseries import NULL_HUB
from repro.obs.tracer import NullTracer, Tracer
from repro.sim.engine import Engine
from repro.sim.fast import FastEngine
from repro.utils.validation import require_positive

__all__ = ["BATCHING_POLICIES", "GPU_ASSIGNMENTS", "BatchingServer", "LeastQueuedRouter"]

#: Dispatch policies a :class:`BatchingServer` understands.
BATCHING_POLICIES = ("serve_now", "batch", "adaptive")

#: Server→GPU assignment policies the fleet understands: static
#: round-robin at build time, or least-queued GPU chosen per submit.
GPU_ASSIGNMENTS = ("round_robin", "least_queued")


class BatchingServer:
    """One shared batching GPU: hold queue + exclusive resource."""

    def __init__(
        self,
        engine: Engine | FastEngine,
        model: CloudGpuModel | None = None,
        max_batch: int = 8,
        max_wait: float = 0.02,
        policy: str = "batch",
        name: str = "cloud-gpu",
        tracer: "Tracer | NullTracer | None" = None,
        telemetry=None,
    ) -> None:
        if policy not in BATCHING_POLICIES:
            raise ValueError(
                f"unknown batching policy {policy!r} (use {BATCHING_POLICIES})"
            )
        require_positive(max_batch, "max_batch")
        if max_wait < 0 or not math.isfinite(max_wait):
            raise ValueError(f"max_wait must be finite and >= 0, got {max_wait}")
        self.engine = engine
        self.model = model or CloudGpuModel()
        self.max_batch = max_batch
        self.max_wait = max_wait
        self.policy = policy
        self.tracer = tracer or NullTracer()
        self.telemetry = telemetry if telemetry is not None else NULL_HUB
        self.resource = engine.resource(name)
        #: One entry per completed batch: start/end window, member labels.
        self.batch_log: list[dict] = []
        self.submitted: list[str] = []
        self.flush_reasons: dict[str, int] = {}
        #: The batch whose completion callbacks are currently firing —
        #: gateways read it inside ``on_done`` to link a request's trace
        #: to its batch window and co-batched peers.
        self.current_batch: dict | None = None
        self._hold: list[tuple[str, float, Callable[[float, float], None]]] = []
        self._hold_started: float | None = None
        self._pending_hold_window: float | None = None
        self._generation = 0          # stales pending max_wait timers
        self._launched = 0
        self._backlog = 0.0           # service time of formed, unfinished batches

    @property
    def name(self) -> str:
        return self.resource.name

    @property
    def held(self) -> int:
        """Requests waiting in the hold queue (not yet in a batch)."""
        return len(self._hold)

    @property
    def backlog_seconds(self) -> float:
        """Service time of batches formed but not yet finished."""
        return self._backlog

    def queue_delay(self) -> float:
        """Greedy estimate of the wait a new upload would see.

        Formed-batch backlog plus the service time of the current hold
        if it launched now. Deliberately optimistic about the running
        batch (its elapsed part is not subtracted) — this feeds the
        EFT placement scorer, which only needs relative ordering.
        """
        delay = self._backlog
        if self._hold:
            delay += self.model.batch_latency([u for _, u, _ in self._hold])
        return delay

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(
        self,
        label: str,
        solo_time: float,
        on_done: Callable[[float, float], None],
        slack: float = math.inf,
    ) -> None:
        """Enqueue one uploaded request's cloud stage.

        ``solo_time`` is the planner-priced exclusive GPU time;
        ``on_done(start, end)`` fires with the batch window when the
        coalesced batch completes. ``slack`` (time to the request's
        deadline) only matters under the ``adaptive`` policy.
        """
        unit = self.model.unit_time(solo_time)
        self.submitted.append(label)
        item = (label, unit, on_done)
        if self.policy == "serve_now":
            self._launch([item], reason="now")
            return
        if self.policy == "adaptive" and not self._worth_holding(unit, slack):
            # deadline too tight to wait for company: flush everything
            # held so far together with this request, right now
            self._launch(self._take_hold() + [item], reason="slack")
            return
        self._hold.append(item)
        if len(self._hold) == 1:
            self._hold_started = self.engine.now
        if len(self._hold) >= self.max_batch:
            self._launch(self._take_hold(), reason="size")
        elif self.max_wait == 0:
            self._launch(self._take_hold(), reason="timer")
        elif len(self._hold) == 1:
            generation = self._generation
            self.engine.schedule(self.max_wait, lambda: self._timer_fire(generation))

    def _worth_holding(self, unit: float, slack: float) -> bool:
        return slack > self.max_wait + self.queue_delay() + unit

    def _take_hold(self) -> list[tuple[str, float, Callable[[float, float], None]]]:
        items, self._hold = self._hold, []
        self._generation += 1
        # hand the hold window to the launch that consumes these items
        self._pending_hold_window = self._hold_started
        self._hold_started = None
        return items

    def _timer_fire(self, generation: int) -> None:
        # a stale timer (its hold already flushed by size/slack) no-ops
        if generation == self._generation and self._hold:
            self._launch(self._take_hold(), reason="timer")

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _launch(
        self, items: list[tuple[str, float, Callable[[float, float], None]]],
        reason: str,
    ) -> None:
        self.flush_reasons[reason] = self.flush_reasons.get(reason, 0) + 1
        self._launched += 1
        index = self._launched
        latency = self.model.batch_latency([unit for _, unit, _ in items])
        self._backlog += latency
        labels = [label for label, _, _ in items]
        batch_label = labels[0] if len(items) == 1 else f"batch[{len(items)}]"
        hold_started = self._pending_hold_window
        self._pending_hold_window = None
        if self.tracer.enabled and hold_started is not None:
            # the hold window: first held arrival → this flush
            self.tracer.record(
                f"hold[{len(items)}]",
                hold_started,
                self.engine.now,
                lane=(self.name, "hold"),
                size=len(items),
                reason=reason,
            )

        def done(start: float, end: float) -> None:
            self._backlog -= latency
            self.batch_log.append(
                {
                    "start": start,
                    "end": end,
                    "size": len(items),
                    "requests": labels,
                    "reason": reason,
                }
            )
            if self.tracer.enabled:
                parent = self.tracer.record(
                    batch_label,
                    start,
                    end,
                    lane=(self.name, "batches"),
                    size=len(items),
                    reason=reason,
                    batch=index,
                    requests=list(labels),
                )
                # one child window per member, so a batch opens into the
                # requests that rode it
                for label in labels:
                    self.tracer.record(
                        label,
                        start,
                        end,
                        parent=parent,
                        lane=(self.name, "requests"),
                        batch=index,
                    )
            if self.telemetry.enabled:
                self.telemetry.observe("batch_size", end, len(items), gpu=self.name)
                self.telemetry.record("batches", end, gpu=self.name, reason=reason)
                self.telemetry.sample("gpu_backlog", end, self._backlog, gpu=self.name)
            # visible to the members' on_done callbacks (trace linking)
            self.current_batch = {
                "batch": index,
                "batch_size": len(items),
                "flush_reason": reason,
                "co_batched": list(labels),
                "gpu": self.name,
            }
            for _, _, on_done in items:
                on_done(start, end)

        self.resource.acquire(batch_label, latency, done)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """JSON-safe summary for the fleet report's ``cloud`` section."""
        sizes = [batch["size"] for batch in self.batch_log]
        return {
            "name": self.name,
            "policy": self.policy,
            "max_batch": self.max_batch,
            "max_wait": self.max_wait,
            "submitted": len(self.submitted),
            "batches": len(sizes),
            "batched_requests": sum(sizes),
            "mean_batch_size": sum(sizes) / len(sizes) if sizes else 0.0,
            "max_batch_size": max(sizes) if sizes else 0,
            "flush_reasons": dict(self.flush_reasons),
            "busy_time": self.resource.total_busy_time,
        }


class _PoolBusy:
    """Aggregate resource view of a GPU pool (duck-typed ``Resource``).

    Gateways riding a router report cloud utilization through this:
    ``total_busy_time`` sums the pool, so the report's cloud fraction
    reads as pool-seconds over the horizon (it may exceed 1.0 with
    several GPUs — busy GPU-seconds, not a single-device fraction).
    """

    def __init__(self, pool: list[BatchingServer], name: str) -> None:
        self._pool = pool
        self.name = name

    @property
    def total_busy_time(self) -> float:
        return sum(gpu.resource.total_busy_time for gpu in self._pool)

    def utilization(self, horizon: float) -> float:
        if horizon <= 0:
            raise ValueError(f"horizon must be > 0, got {horizon}")
        return self.total_busy_time / horizon


class LeastQueuedRouter:
    """Route each cloud submit to the least-queued GPU *at submit time*.

    The PR 7 fleet pinned gateway ``i`` to GPU ``i % K`` at build time,
    so a skewed placement could saturate one GPU while its neighbor
    idled. This router scores the pool with the same greedy
    :meth:`BatchingServer.queue_delay` estimate the EFT placer prices,
    picks the minimum (ties → lowest index, deterministic), and
    delegates — hold/flush semantics, batch logs, and per-GPU stats
    stay exactly the :class:`BatchingServer`'s. It mirrors the server's
    gateway-facing surface (``submit`` / ``queue_delay`` /
    ``current_batch`` / ``resource`` / ``name``) so gateways cannot
    tell a router from a private GPU.
    """

    name = "least-queued-pool"

    def __init__(self, pool: list[BatchingServer]) -> None:
        if not pool:
            raise ValueError("LeastQueuedRouter needs a non-empty GPU pool")
        self.pool = pool
        self.resource = _PoolBusy(pool, self.name)
        #: Mirrors the routed GPU's ``current_batch`` while completion
        #: callbacks fire (what gateways read inside ``on_done``).
        self.current_batch: dict | None = None
        #: Per-GPU routed-submit counts, for reports and tests.
        self.routed: dict[str, int] = {gpu.name: 0 for gpu in pool}

    def queue_delay(self) -> float:
        """The wait a new upload would see on the best GPU."""
        return min(gpu.queue_delay() for gpu in self.pool)

    def submit(
        self,
        label: str,
        solo_time: float,
        on_done: Callable[[float, float], None],
        slack: float = math.inf,
    ) -> None:
        best = self.pool[0]
        best_delay = best.queue_delay()
        for gpu in self.pool[1:]:
            delay = gpu.queue_delay()
            if delay < best_delay:
                best, best_delay = gpu, delay
        self.routed[best.name] += 1

        def done(start: float, end: float) -> None:
            self.current_batch = best.current_batch
            on_done(start, end)

        best.submit(label, solo_time, done, slack)
