"""Cloud-side batching as a ``SystemConfig`` block.

``SystemConfig.cloud`` is strictly opt-in: when it is ``None`` (the
default) every gateway keeps its own free, infinitely parallel cloud
GPU — the pre-batching behavior, byte-identical to the golden compat
reports. When set, the fleet builds ``gpus`` shared
:class:`~repro.cloud.server.BatchingServer` instances on the one fleet
engine and wires gateway ``i`` to GPU ``i % gpus``, so N servers
contend for K GPUs and the hold-and-batch knobs apply fleet-wide.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.cloud.model import CloudGpuModel
from repro.cloud.server import BATCHING_POLICIES
from repro.utils.validation import require_positive

__all__ = ["CloudConfig"]


@dataclass(frozen=True)
class CloudConfig:
    """Shared batching cloud: pool size, hold knobs, GPU model."""

    gpus: int = 1
    max_batch: int = 8
    max_wait: float = 0.02
    policy: str = "batch"
    model: CloudGpuModel = field(default_factory=CloudGpuModel)

    def __post_init__(self) -> None:
        require_positive(self.gpus, "gpus")
        require_positive(self.max_batch, "max_batch")
        if self.max_wait < 0 or not math.isfinite(self.max_wait):
            raise ValueError(f"max_wait must be finite and >= 0, got {self.max_wait}")
        if self.policy not in BATCHING_POLICIES:
            raise ValueError(
                f"unknown batching policy {self.policy!r} (use {BATCHING_POLICIES})"
            )

    def as_dict(self) -> dict:
        return {
            "gpus": self.gpus,
            "max_batch": self.max_batch,
            "max_wait": self.max_wait,
            "policy": self.policy,
            "model": self.model.as_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CloudConfig":
        model = data.get("model")
        return cls(
            gpus=data.get("gpus", 1),
            max_batch=data.get("max_batch", 8),
            max_wait=data.get("max_wait", 0.02),
            policy=data.get("policy", "batch"),
            model=(
                CloudGpuModel() if model is None else CloudGpuModel.from_dict(model)
            ),
        )
