"""Cloud-side batching as a ``SystemConfig`` block.

``SystemConfig.cloud`` is strictly opt-in: when it is ``None`` (the
default) every gateway keeps its own free, infinitely parallel cloud
GPU — the pre-batching behavior, byte-identical to the golden compat
reports. When set, the fleet builds ``gpus`` shared
:class:`~repro.cloud.server.BatchingServer` instances on the one fleet
engine and wires gateway ``i`` to GPU ``i % gpus``, so N servers
contend for K GPUs and the hold-and-batch knobs apply fleet-wide.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.cloud.model import CloudGpuModel
from repro.cloud.server import BATCHING_POLICIES, GPU_ASSIGNMENTS
from repro.utils.validation import require_positive

__all__ = ["CloudConfig"]


@dataclass(frozen=True)
class CloudConfig:
    """Shared batching cloud: pool size, hold knobs, GPU model.

    ``assignment`` picks how servers map to pool GPUs:
    ``"least_queued"`` (the default) routes every submit to the GPU
    with the smallest :meth:`~repro.cloud.server.BatchingServer.queue_delay`
    at that instant; ``"round_robin"`` restores the PR 7 static
    gateway ``i`` → GPU ``i % gpus`` wiring (the serve-now bijection
    parity lock pins this). A single-GPU pool is identical either way
    and never builds a router.
    """

    gpus: int = 1
    max_batch: int = 8
    max_wait: float = 0.02
    policy: str = "batch"
    assignment: str = "least_queued"
    model: CloudGpuModel = field(default_factory=CloudGpuModel)

    def __post_init__(self) -> None:
        require_positive(self.gpus, "gpus")
        require_positive(self.max_batch, "max_batch")
        if self.max_wait < 0 or not math.isfinite(self.max_wait):
            raise ValueError(f"max_wait must be finite and >= 0, got {self.max_wait}")
        if self.policy not in BATCHING_POLICIES:
            raise ValueError(
                f"unknown batching policy {self.policy!r} (use {BATCHING_POLICIES})"
            )
        if self.assignment not in GPU_ASSIGNMENTS:
            raise ValueError(
                f"unknown GPU assignment {self.assignment!r} (use {GPU_ASSIGNMENTS})"
            )

    def as_dict(self) -> dict:
        return {
            "gpus": self.gpus,
            "max_batch": self.max_batch,
            "max_wait": self.max_wait,
            "policy": self.policy,
            "assignment": self.assignment,
            "model": self.model.as_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CloudConfig":
        model = data.get("model")
        return cls(
            gpus=data.get("gpus", 1),
            max_batch=data.get("max_batch", 8),
            max_wait=data.get("max_wait", 0.02),
            policy=data.get("policy", "batch"),
            assignment=data.get("assignment", "least_queued"),
            model=(
                CloudGpuModel() if model is None else CloudGpuModel.from_dict(model)
            ),
        )
