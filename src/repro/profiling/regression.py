"""Latency estimators fit by least squares (the Neurosurgeon approach).

Two models, exactly as §6.1 describes:

* :class:`LayerLatencyModel` — per layer-*kind* linear regression
  ``time ~ b0 + b1 * flops + b2 * bytes_moved``. The paper (after [10])
  predicts layer times from layer type and shape; FLOPs and tensor bytes
  are the canonical shape features.
* :class:`CommLatencyModel` — ``t = w0 + w1 * r`` with ``r = s / b``
  (message bytes over link bits/s). ``w0`` captures channel setup cost.

Both are plain ``numpy.linalg.lstsq`` fits: tiny design matrices, no
iterative optimization, negligible scheduler overhead (Fig. 12(d)).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.layers import numel
from repro.nn.network import LayerNode
from repro.profiling.profiler import CommSample, ProfileRecord
from repro.utils.units import FLOAT32_BYTES

__all__ = ["LayerLatencyModel", "CommLatencyModel"]


def _features(flops: float, bytes_moved: float) -> np.ndarray:
    return np.array([1.0, flops, bytes_moved])


@dataclass
class LayerLatencyModel:
    """Per-kind linear latency predictor fit from profile records."""

    coefficients: dict[str, np.ndarray] = field(default_factory=dict)
    fallback: np.ndarray | None = None

    @classmethod
    def fit(cls, records: list[ProfileRecord]) -> "LayerLatencyModel":
        """Least-squares fit, one model per layer kind plus a global fallback.

        Kinds with fewer samples than features keep no dedicated model
        and fall through to the global fit.
        """
        if not records:
            raise ValueError("cannot fit a latency model on zero records")
        by_kind: dict[str, list[ProfileRecord]] = {}
        for record in records:
            by_kind.setdefault(record.kind, []).append(record)

        model = cls()
        rows, times = [], []
        for record in records:
            rows.append(_features(record.flops, record.input_bytes + record.output_bytes))
            times.append(record.mean_time)
        model.fallback, *_ = np.linalg.lstsq(np.array(rows), np.array(times), rcond=None)

        for kind, group in by_kind.items():
            if len(group) < 3:
                continue
            design = np.array(
                [_features(r.flops, r.input_bytes + r.output_bytes) for r in group]
            )
            target = np.array([r.mean_time for r in group])
            coeffs, *_ = np.linalg.lstsq(design, target, rcond=None)
            model.coefficients[kind] = coeffs
        return model

    def predict(self, node: LayerNode) -> float:
        """Predicted time for a placed layer; clamped at zero.

        The Input pseudo-layer is free by definition (no computation).
        """
        if node.kind == "input":
            return 0.0
        if self.fallback is None:
            raise RuntimeError("model is not fitted")
        coeffs = self.coefficients.get(node.kind, self.fallback)
        bytes_moved = node.output_bytes + FLOAT32_BYTES * sum(
            numel(s) for s in node.input_shapes
        )
        value = float(coeffs @ _features(node.flops, bytes_moved))
        return max(value, 0.0)

    def max_relative_error(self, records: list[ProfileRecord]) -> float:
        """Worst relative prediction error against measured means (diagnostics)."""
        worst = 0.0
        for record in records:
            if record.mean_time <= 0:
                continue
            coeffs = self.coefficients.get(record.kind, self.fallback)
            predicted = float(
                coeffs @ _features(record.flops, record.input_bytes + record.output_bytes)
            )
            worst = max(worst, abs(predicted - record.mean_time) / record.mean_time)
        return worst


@dataclass
class CommLatencyModel:
    """The paper's ``t = w0 + w1 * r`` communication regression."""

    w0: float = 0.0
    w1: float = 0.0
    fitted: bool = False

    @classmethod
    def fit(cls, samples: list[CommSample]) -> "CommLatencyModel":
        """Fit setup latency and per-ratio slope from transfer samples."""
        if len(samples) < 2:
            raise ValueError("need at least two communication samples to fit")
        ratios = np.array([s.payload_bytes / s.bandwidth_bps for s in samples])
        times = np.array([s.time for s in samples])
        design = np.column_stack([np.ones_like(ratios), ratios])
        (w0, w1), *_ = np.linalg.lstsq(design, times, rcond=None)
        return cls(w0=float(w0), w1=float(w1), fitted=True)

    def predict(self, payload_bytes: float, bandwidth_bps: float) -> float:
        """Predicted upload time; zero payloads never touch the network."""
        if not self.fitted:
            raise RuntimeError("model is not fitted")
        if payload_bytes == 0:
            return 0.0
        return max(self.w0 + self.w1 * payload_bytes / bandwidth_bps, 0.0)

    @property
    def effective_bits_per_byte(self) -> float:
        """w1 expressed as wire bits per payload byte (ideal framing = 8)."""
        return self.w1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CommLatencyModel(w0={self.w0:.6f}s, w1={self.w1:.3f})"
