"""Profiling substrate: device models, cost tables, estimators."""

from repro.profiling.device import DEVICES, DeviceModel, gtx1080_server, raspberry_pi_4
from repro.profiling.energy import (
    CELLULAR_POWER,
    WIFI_POWER,
    PowerProfile,
    energy_latency_frontier,
    job_energy,
    schedule_energy,
)
from repro.profiling.latency import (
    CostTable,
    cut_costs,
    line_cost_table,
    node_mobile_time,
    path_cost_table,
    smooth_cost_table,
)
from repro.profiling.lookup import LookupTable, build_lookup_table
from repro.profiling.profiler import (
    CommSample,
    ProfileRecord,
    measure_communication,
    profile_network,
)
from repro.profiling.regression import CommLatencyModel, LayerLatencyModel

__all__ = [
    "CELLULAR_POWER",
    "DEVICES",
    "PowerProfile",
    "WIFI_POWER",
    "energy_latency_frontier",
    "job_energy",
    "schedule_energy",
    "CommLatencyModel",
    "CommSample",
    "CostTable",
    "DeviceModel",
    "LayerLatencyModel",
    "LookupTable",
    "ProfileRecord",
    "build_lookup_table",
    "cut_costs",
    "gtx1080_server",
    "line_cost_table",
    "measure_communication",
    "node_mobile_time",
    "path_cost_table",
    "profile_network",
    "raspberry_pi_4",
    "smooth_cost_table",
]
