"""The computation-time lookup table of §6.1.

The paper treats local computation time as stable and pre-builds a
lookup table of per-layer times (the set of commonly used DNNs is small)
so the scheduler never profiles at decision time — a key ingredient of
the negligible JPS overhead in Fig. 12(d). Communication, which varies
with bandwidth, goes through :class:`~repro.profiling.regression.CommLatencyModel`
instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.network import LayerNode, Network
from repro.profiling.device import DeviceModel
from repro.profiling.profiler import profile_network

__all__ = ["LookupTable", "build_lookup_table"]


@dataclass
class LookupTable:
    """Per-(model, layer) measured mean times for one device."""

    device: str
    times: dict[tuple[str, str], float] = field(default_factory=dict)

    def add(self, model: str, node_id: str, time: float) -> None:
        if time < 0:
            raise ValueError(f"time must be >= 0, got {time}")
        self.times[(model, node_id)] = time

    def time(self, model: str, node_id: str) -> float:
        try:
            return self.times[(model, node_id)]
        except KeyError:
            raise KeyError(
                f"no lookup entry for layer {node_id!r} of model {model!r} "
                f"on device {self.device!r}"
            ) from None

    def __contains__(self, key: tuple[str, str]) -> bool:
        return key in self.times

    def __len__(self) -> int:
        return len(self.times)

    def covers(self, network: Network) -> bool:
        """True if every layer of ``network`` has an entry."""
        return all((network.name, v) in self.times for v in network.graph.node_ids)

    def predictor_for(self, model: str):
        """A ``LayerPredictor`` closure for :mod:`repro.profiling.latency`."""

        def predict(node: LayerNode) -> float:
            return self.time(model, node.name)

        return predict


def build_lookup_table(
    networks: list[Network],
    device: DeviceModel,
    seed: int | np.random.Generator | None = None,
    noise: float = 0.05,
    repeats: int = 5,
) -> LookupTable:
    """Profile every layer of every network once and tabulate the means."""
    table = LookupTable(device=device.name)
    for network in networks:
        for record in profile_network(
            network, device, seed=seed, noise=noise, repeats=repeats
        ):
            table.add(record.model, record.node_id, record.mean_time)
    return table
