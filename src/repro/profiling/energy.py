"""Mobile energy model: the battery cost of a partition decision.

The paper optimizes makespan only, but on a phone or AR headset the
same partition choice also decides battery draw: local computation
burns CPU power for ``f`` seconds, offloading burns radio power for
``g`` seconds (plus a tail-state cost after each transfer — the
well-known cellular "tail energy"). This module prices JobPlans and
Schedules under a device power profile so energy-aware trade-offs can
be studied next to the latency results.

Default constants follow published Raspberry-Pi-4 / smartphone
measurements: ~4 W CPU load above a ~2 W idle floor, ~1.2 W Wi-Fi
transmit, ~2.5 W cellular transmit with a 1.5 J tail.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.plans import JobPlan, Schedule
from repro.profiling.latency import CostTable
from repro.utils.validation import require_non_negative

__all__ = ["PowerProfile", "WIFI_POWER", "CELLULAR_POWER", "job_energy",
           "schedule_energy", "energy_latency_frontier"]


@dataclass(frozen=True)
class PowerProfile:
    """Average power draw (watts) of the mobile device's states."""

    name: str
    compute_watts: float = 4.0        # CPU at inference load (above idle)
    radio_watts: float = 1.2          # active transmit
    idle_watts: float = 0.0           # baseline during the makespan (0 = ignore)
    tail_joules: float = 0.0          # per-transfer radio tail-state energy

    def __post_init__(self) -> None:
        require_non_negative(self.compute_watts, "compute_watts")
        require_non_negative(self.radio_watts, "radio_watts")
        require_non_negative(self.idle_watts, "idle_watts")
        require_non_negative(self.tail_joules, "tail_joules")


WIFI_POWER = PowerProfile(name="wifi", compute_watts=4.0, radio_watts=1.2,
                          tail_joules=0.1)
CELLULAR_POWER = PowerProfile(name="cellular", compute_watts=4.0, radio_watts=2.5,
                              tail_joules=1.5)


def job_energy(plan: JobPlan, power: PowerProfile) -> float:
    """Joules drawn from the mobile battery by one job."""
    energy = power.compute_watts * plan.compute_time
    if plan.comm_time > 0:
        energy += power.radio_watts * plan.comm_time + power.tail_joules
    return energy


def schedule_energy(schedule: Schedule, power: PowerProfile) -> float:
    """Total battery energy of a schedule (idle floor over the makespan
    included when the profile defines one)."""
    total = sum(job_energy(plan, power) for plan in schedule.jobs)
    return total + power.idle_watts * schedule.makespan


@dataclass(frozen=True)
class EnergyLatencyPoint:
    """One homogeneous-cut operating point."""

    position: int
    label: str
    per_job_latency: float     # f + g (single-job view)
    per_job_energy: float


def energy_latency_frontier(
    table: CostTable, power: PowerProfile
) -> list[EnergyLatencyPoint]:
    """Pareto frontier of (latency, energy) over homogeneous cuts.

    Deep cuts buy latency with CPU joules; shallow cuts buy battery
    with radio time. The surviving points are the rational operating
    range for an energy-aware policy; the latency-optimal JPS cut is
    always among the candidates but not necessarily on the knee.
    """
    points = []
    for position in range(table.k):
        f, g = table.stage_lengths(position)
        plan = JobPlan(
            job_id=0, model=table.model_name, cut_position=position,
            compute_time=f, comm_time=g,
        )
        points.append(
            EnergyLatencyPoint(
                position=position,
                label=table.positions[position],
                per_job_latency=f + g,
                per_job_energy=job_energy(plan, power),
            )
        )
    points.sort(key=lambda p: (p.per_job_latency, p.per_job_energy))
    frontier: list[EnergyLatencyPoint] = []
    best_energy = float("inf")
    for point in points:
        if point.per_job_energy < best_energy:
            frontier.append(point)
            best_energy = point.per_job_energy
    return frontier
