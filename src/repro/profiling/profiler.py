"""Synthetic profiler: the offline stand-in for PyTorch Profiler runs.

A "measurement" is the device model's ground-truth layer time perturbed
by multiplicative log-normal noise — the shape of real repeated latency
measurements (strictly positive, right-skewed, ~5% spread on a quiet
device). The regression and lookup-table estimators are fit on these
noisy samples, so every scheduler downstream plans with realistic
estimation error while the simulator executes ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.net.channel import Channel
from repro.nn.network import Network
from repro.profiling.device import DeviceModel
from repro.utils.rng import make_rng
from repro.utils.validation import require_non_negative, require_positive

__all__ = ["ProfileRecord", "CommSample", "profile_network", "measure_communication"]


@dataclass(frozen=True)
class ProfileRecord:
    """One repeated-measurement summary of a layer on a device."""

    model: str
    node_id: str
    kind: str
    flops: float
    input_bytes: float
    output_bytes: float
    device: str
    mean_time: float
    samples: tuple[float, ...]


@dataclass(frozen=True)
class CommSample:
    """One measured transfer: payload size, link rate, elapsed time."""

    payload_bytes: float
    bandwidth_bps: float
    time: float


def _noisy(value: float, rng: np.random.Generator, noise: float, repeats: int) -> np.ndarray:
    if value == 0.0:
        return np.zeros(repeats)
    return value * rng.lognormal(mean=0.0, sigma=noise, size=repeats)


def profile_network(
    network: Network,
    device: DeviceModel,
    seed: int | np.random.Generator | None = None,
    noise: float = 0.05,
    repeats: int = 5,
) -> list[ProfileRecord]:
    """Measure every layer of ``network`` on ``device``.

    Returns one record per layer with ``repeats`` noisy samples and
    their mean — the raw material for the lookup table (§6.1) and the
    latency regression.
    """
    require_non_negative(noise, "noise")
    require_positive(repeats, "repeats")
    rng = make_rng(seed)
    records: list[ProfileRecord] = []
    for node in network.nodes():
        truth = device.layer_time(node)
        samples = _noisy(truth, rng, noise, repeats)
        records.append(
            ProfileRecord(
                model=network.name,
                node_id=node.name,
                kind=node.kind,
                flops=node.flops,
                input_bytes=4.0 * sum(int(np.prod(s)) for s in node.input_shapes),
                output_bytes=node.output_bytes,
                device=device.name,
                mean_time=float(samples.mean()) if len(samples) else 0.0,
                samples=tuple(float(s) for s in samples),
            )
        )
    return records


def measure_communication(
    channel: Channel,
    payload_sizes: list[float],
    seed: int | np.random.Generator | None = None,
    noise: float = 0.05,
    repeats: int = 5,
) -> list[CommSample]:
    """Measure uplink transfers of the given payload sizes.

    Mirrors the testbed procedure: the client times a request/reply
    round and subtracts the server-reported compute time; here the
    channel model provides the true transfer time, perturbed by the same
    log-normal measurement noise.
    """
    require_non_negative(noise, "noise")
    require_positive(repeats, "repeats")
    rng = make_rng(seed)
    samples: list[CommSample] = []
    for size in payload_sizes:
        require_non_negative(size, "payload size")
        truth = channel.uplink_time(size)
        for value in _noisy(truth, rng, noise, repeats):
            samples.append(
                CommSample(
                    payload_bytes=size,
                    bandwidth_bps=channel.uplink_bps,
                    time=float(value),
                )
            )
    return samples
