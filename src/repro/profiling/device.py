"""Device execution models: how long a layer takes on a given device.

The paper measures layer times with the PyTorch profiler on a Raspberry
Pi 4B (mobile) and an i7-8700 + GTX1080 PC (cloud). Offline we model a
layer's time with the standard roofline-style decomposition::

    t(layer) = overhead + flops / throughput(kind) + bytes_moved / mem_bw

* ``overhead`` — per-layer framework dispatch cost (interpreter, kernel
  launch). Dominates tiny layers, exactly as observed on real devices.
* ``throughput(kind)`` — effective FLOP/s for the layer type. Convs
  reach near-peak GEMM rates; fully-connected single-image inference is
  a GEMV and runs memory-bound at a much lower rate.
* ``bytes_moved`` — input + output traffic; the only cost of Concat,
  Flatten, Dropout and friends.

The default profiles are calibrated to public Pi-4 / GTX1080 inference
measurements (effective, not peak, rates). What the theory needs from
them — mobile ≫ cloud per-layer times, roughly linear cumulative ``f``
— is insensitive to the exact constants, and the regression tests fit
recovered coefficients rather than assuming them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.nn.layers import numel
from repro.nn.network import LayerNode
from repro.utils.units import FLOAT32_BYTES, gflops, us
from repro.utils.validation import require_positive

__all__ = ["DeviceModel", "raspberry_pi_4", "gtx1080_server", "DEVICES"]


@dataclass(frozen=True)
class DeviceModel:
    """Analytic latency model of one execution device."""

    name: str
    default_throughput: float          # FLOP/s for layer kinds not listed
    kind_throughput: Mapping[str, float] = field(default_factory=dict)
    memory_bandwidth: float = 3e9      # bytes/s for data movement
    layer_overhead: float = 2e-4       # seconds of fixed per-layer cost

    def __post_init__(self) -> None:
        require_positive(self.default_throughput, "default_throughput")
        require_positive(self.memory_bandwidth, "memory_bandwidth")
        if self.layer_overhead < 0:
            raise ValueError(f"layer_overhead must be >= 0, got {self.layer_overhead}")
        for kind, rate in self.kind_throughput.items():
            require_positive(rate, f"throughput[{kind}]")

    def throughput(self, kind: str) -> float:
        """Effective FLOP/s for a layer kind."""
        return self.kind_throughput.get(kind, self.default_throughput)

    def scaled(self, factor: float) -> "DeviceModel":
        """A uniformly ``factor``-times-faster (or slower) device.

        Throughputs and memory bandwidth multiply by ``factor`` and the
        per-layer overhead divides by it, so every layer time scales by
        exactly ``1 / factor`` — how the fleet layer models
        heterogeneous server hardware off one calibrated profile.
        """
        require_positive(factor, "factor")
        if factor == 1.0:
            return self
        return DeviceModel(
            name=f"{self.name}-x{factor:g}",
            default_throughput=self.default_throughput * factor,
            kind_throughput={k: v * factor for k, v in self.kind_throughput.items()},
            memory_bandwidth=self.memory_bandwidth * factor,
            layer_overhead=self.layer_overhead / factor,
        )

    def layer_time(self, node: LayerNode) -> float:
        """Predicted execution time of one placed layer, in seconds.

        The Input pseudo-layer is free: the tensor already resides on
        the device that generated the job.
        """
        if node.kind == "input":
            return 0.0
        input_bytes = FLOAT32_BYTES * sum(numel(s) for s in node.input_shapes)
        moved = node.output_bytes + input_bytes
        compute = node.flops / self.throughput(node.kind)
        return self.layer_overhead + compute + moved / self.memory_bandwidth


def raspberry_pi_4() -> DeviceModel:
    """Mobile device: Raspberry Pi 4B (quad Cortex-A72), PyTorch CPU.

    Effective rates: convolutions ~5 GFLOP/s (NEON GEMM at ~20% of the
    24 GFLOP/s peak), GEMV-style linear layers ~1.2 GFLOP/s, element-wise
    ops bounded by ~3 GB/s of practical memory bandwidth.
    """
    return DeviceModel(
        name="raspberry-pi-4",
        default_throughput=gflops(2.5),
        kind_throughput={
            "conv2d": gflops(5.0),
            "depthwiseconv2d": gflops(1.8),  # poor arithmetic intensity
            "linear": gflops(1.2),
            "maxpool2d": gflops(2.0),
            "avgpool2d": gflops(2.0),
            "globalavgpool": gflops(2.0),
            "lrn": gflops(2.0),
        },
        memory_bandwidth=3e9,
        layer_overhead=us(250),
    )


def gtx1080_server() -> DeviceModel:
    """Cloud server: i7-8700 + GTX1080, PyTorch CUDA.

    Effective rates ~2-3 TFLOP/s for convolutions (GTX1080 peaks at
    8.9 TFLOP/s FP32), ~0.4 TFLOP/s for GEMV linears, 200 GB/s memory.
    Per-layer overhead is the CUDA kernel-launch cost. The resulting
    whole-network times are two to three orders of magnitude below the
    mobile ones — the regime in which the paper drops the cloud stage.
    """
    return DeviceModel(
        name="gtx1080-server",
        default_throughput=gflops(800),
        kind_throughput={
            "conv2d": gflops(2500),
            "depthwiseconv2d": gflops(400),
            "linear": gflops(400),
            "maxpool2d": gflops(1000),
            "avgpool2d": gflops(1000),
            "globalavgpool": gflops(1000),
        },
        memory_bandwidth=2e11,
        layer_overhead=us(20),
    )


#: Registry used by experiment configuration.
DEVICES = {
    "raspberry-pi-4": raspberry_pi_4,
    "gtx1080-server": gtx1080_server,
}
