"""Cost tables: the (f, g) functions the paper's algorithms consume.

For a line-structure DNN with cut positions ``0..k-1`` ("cut after
layer i"), the table stores

* ``f[i]`` — cumulative mobile computation time through layer ``i``
  (monotonically non-decreasing; roughly linear on real DNNs, §3.2),
* ``g[i]`` — upload time of layer ``i``'s output tensor (non-increasing
  after virtual-block clustering; roughly convex decreasing),
* ``cloud[i]`` — cloud time of the *remaining* layers (negligible next
  to f and g; kept for the 3-stage flow-shop extension).

Position ``0`` is the Input pseudo-layer: ``f[0] = 0`` and ``g[0]`` is
the raw-input upload — the cloud-only scheme. The final position has
``g[k-1] = 0``: a fully-local job never touches the network (results
are consumed on the device that produced them).

Tables are built from a :class:`~repro.profiling.device.DeviceModel`
pair and a :class:`~repro.net.Channel`, optionally through a fitted
predictor (lookup table / regression) instead of ground truth — that is
how estimation error enters the planning path while the simulator
executes the truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable

import numpy as np

from repro.dag.cuts import Cut
from repro.dag.graph import Dag
from repro.dag.transform import VirtualBlock, linearize
from repro.net.channel import Channel
from repro.nn.network import LayerNode, Network
from repro.profiling.device import DeviceModel

__all__ = [
    "CostTable",
    "node_mobile_time",
    "line_cost_table",
    "path_cost_table",
    "cut_costs",
    "smooth_cost_table",
]

#: Optional override for per-layer time prediction (lookup table, regression).
LayerPredictor = Callable[[LayerNode], float]


def _payload_layers(payload: object) -> list[LayerNode]:
    """Flatten a node payload (LayerNode or VirtualBlock) to LayerNodes."""
    if isinstance(payload, LayerNode):
        return [payload]
    if isinstance(payload, VirtualBlock):
        out: list[LayerNode] = []
        for inner in payload.payloads:
            out.extend(_payload_layers(inner))
        return out
    raise TypeError(f"unsupported payload type {type(payload).__name__}")


def node_mobile_time(
    payload: object, device: DeviceModel, predictor: LayerPredictor | None = None
) -> float:
    """Execution time of a node (recursing through virtual blocks)."""
    predict = predictor or device.layer_time
    return sum(predict(layer) for layer in _payload_layers(payload))


@dataclass(frozen=True, eq=False)
class CostTable:
    """Per-cut-position costs of one line-structure (or linearized) DNN."""

    model_name: str
    positions: tuple[str, ...]
    f: np.ndarray
    g: np.ndarray
    cloud: np.ndarray
    graph: Dag | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        k = len(self.positions)
        if k == 0:
            raise ValueError("cost table must have at least one position")
        for name, arr in (("f", self.f), ("g", self.g), ("cloud", self.cloud)):
            if arr.shape != (k,):
                raise ValueError(f"{name} must have shape ({k},), got {arr.shape}")
            if np.any(arr < 0):
                raise ValueError(f"{name} must be non-negative")
        if np.any(np.diff(self.f) < 0):
            raise ValueError("f must be non-decreasing")
        if np.any(np.diff(self.cloud) < 0):
            raise ValueError("cloud must be non-decreasing")

    # ------------------------------------------------------------------
    @property
    def k(self) -> int:
        """Number of cut positions."""
        return len(self.positions)

    @property
    def local_only_time(self) -> float:
        """f at the last position: run everything on the mobile device."""
        return float(self.f[-1])

    @property
    def cloud_only_upload(self) -> float:
        """g at position 0: upload the raw input."""
        return float(self.g[0])

    def cloud_rest(self, position: int) -> float:
        """Cloud time of the part *after* ``position``."""
        return float(self.cloud[-1] - self.cloud[position])

    def is_g_non_increasing(self, tolerance: float = 1e-12) -> bool:
        """True when clustering achieved the §3.2 monotonicity of g."""
        return bool(np.all(np.diff(self.g) <= tolerance))

    def stage_lengths(self, position: int) -> tuple[float, float]:
        """(computation stage, communication stage) of a job cut at ``position``."""
        if not 0 <= position < self.k:
            raise IndexError(f"position must be in [0, {self.k}), got {position}")
        return float(self.f[position]), float(self.g[position])

    def position_of(self, node_id: str) -> int:
        """Index of a cut position by node id."""
        try:
            return self.positions.index(node_id)
        except ValueError:
            raise KeyError(f"{node_id!r} is not a cut position of {self.model_name}") from None

    def transfer_bytes_at(self, position: int) -> float:
        """Payload bytes uploaded when cutting at ``position``.

        Requires a graph-backed table: reads the edge volume between the
        position and its successor; the final position uploads nothing.
        Used by the time-varying-bandwidth simulator, which needs bytes
        rather than a pre-priced duration.
        """
        if self.graph is None:
            raise ValueError(
                f"{self.model_name}: transfer bytes need a graph-backed table"
            )
        if not 0 <= position < self.k:
            raise IndexError(f"position must be in [0, {self.k}), got {position}")
        if position == self.k - 1:
            return 0.0
        return self.graph.volume(self.positions[position], self.positions[position + 1])

    def mobile_nodes_at(self, position: int) -> frozenset[str]:
        """Original-graph node ids on the mobile side of cut ``position``.

        Requires the table to have been built from a graph (``graph`` is
        not None); virtual blocks are expanded to their members so the
        result addresses the *original* network's layers — what the
        runtime prototype executes.
        """
        if self.graph is None:
            raise ValueError(
                f"{self.model_name}: table has no backing graph; "
                "mobile sets are only available for graph-built tables"
            )
        if not 0 <= position < self.k:
            raise IndexError(f"position must be in [0, {self.k}), got {position}")
        from repro.dag.transform import expand_members  # deferred: avoid cycle

        nodes: list[str] = []
        for block_id in self.positions[: position + 1]:
            nodes.extend(expand_members(self.graph, block_id))
        return frozenset(nodes)

    def with_channel_scaled(self, factor: float) -> "CostTable":
        """A table with all communication times scaled by ``factor``.

        Convenience for bandwidth sweeps when rebuilding from the graph
        is unnecessary (time scales as 1/bandwidth up to setup latency).
        """
        if factor <= 0:
            raise ValueError(f"factor must be > 0, got {factor}")
        return replace(self, g=self.g * factor)


def line_cost_table(
    source: Network | Dag,
    mobile: DeviceModel,
    cloud: DeviceModel,
    channel: Channel,
    predictor: LayerPredictor | None = None,
    cluster: bool = True,
) -> CostTable:
    """Build the (f, g, cloud) table of a line-structure DNN.

    ``source`` may be a :class:`Network` (general graphs are linearized
    via virtual-block clustering when ``cluster=True``) or an existing
    line :class:`Dag` whose payloads are LayerNodes / VirtualBlocks.
    """
    if isinstance(source, Network):
        name = source.name
        graph = source.graph
    else:
        name = source.name
        graph = source
    if cluster:
        # linearize also applies virtual-block clustering to graphs that are
        # already lines, which is what restores the §3.2 monotonicity of g
        # (e.g. AlexNet's conv1 output is larger than its input).
        graph = linearize(graph)
    order = graph.line_order()

    f_steps = [node_mobile_time(graph.payload(v), mobile, predictor) for v in order]
    cloud_steps = [node_mobile_time(graph.payload(v), cloud) for v in order]
    volumes = [graph.volume(a, b) for a, b in zip(order, order[1:])] + [0.0]
    g = [channel.uplink_time(v) for v in volumes]

    return CostTable(
        model_name=name,
        positions=tuple(order),
        f=np.cumsum(f_steps),
        g=np.asarray(g),
        cloud=np.cumsum(cloud_steps),
        graph=graph,
    )


def path_cost_table(
    network: Network,
    path: tuple[str, ...],
    mobile: DeviceModel,
    cloud: DeviceModel,
    channel: Channel,
    predictor: LayerPredictor | None = None,
) -> CostTable:
    """Cost table of one independent path of a converted general DAG.

    Used by Alg. 3: each path is treated as a line-structure DNN whose
    per-layer costs come from the *original* nodes, so a layer shared by
    several paths contributes its full time to each path's table (the
    dedup happens later, at scheduling/execution time).
    """
    graph = network.graph
    f_steps = [node_mobile_time(graph.payload(v), mobile, predictor) for v in path]
    cloud_steps = [node_mobile_time(graph.payload(v), cloud) for v in path]
    volumes = [graph.volume(a, b) for a, b in zip(path, path[1:])] + [0.0]
    g = [channel.uplink_time(v) for v in volumes]
    return CostTable(
        model_name=f"{network.name}/path:{path[0]}..{path[-1]}",
        positions=tuple(path),
        f=np.cumsum(f_steps),
        g=np.asarray(g),
        cloud=np.cumsum(cloud_steps),
        graph=None,
    )


def cut_costs(
    network: Network,
    cuts: list[Cut],
    mobile: DeviceModel,
    cloud: DeviceModel,
    channel: Channel,
    predictor: LayerPredictor | None = None,
) -> dict[frozenset[str], tuple[float, float, float]]:
    """(f, g, cloud_rest) for arbitrary DAG cuts.

    Per-node times are computed once and summed per cut, so evaluating
    the thousands of frontier cuts of GoogLeNet stays O(cuts · |V|).
    """
    graph = network.graph
    mobile_time = {
        v: node_mobile_time(graph.payload(v), mobile, predictor) for v in graph.node_ids
    }
    cloud_time = {v: node_mobile_time(graph.payload(v), cloud) for v in graph.node_ids}
    total_cloud = sum(cloud_time.values())
    result: dict[frozenset[str], tuple[float, float, float]] = {}
    for cut in cuts:
        f = sum(mobile_time[v] for v in cut.mobile)
        g = channel.uplink_time(cut.transfer_bytes) if cut.transfer_bytes else 0.0
        # a cut containing every node is fully local: nothing crosses the net
        if len(cut.mobile) == len(graph):
            g = 0.0
        rest = total_cloud - sum(cloud_time[v] for v in cut.mobile)
        result[cut.mobile] = (f, g, rest)
    return result


def smooth_cost_table(table: CostTable, keep_endpoints: bool = True) -> CostTable:
    """The paper's AlexNet′ construction (Fig. 11).

    Replaces ``f`` with its least-squares linear fit and ``g`` with a
    fitted decreasing convex exponential ``a * exp(-b*i) + c``, sampled
    at the original positions. On the smoothed table the continuous
    theory's assumptions hold essentially exactly, so JPS should match
    brute force at every job count.

    ``keep_endpoints`` preserves ``f[0] = 0`` and ``g[-1] = 0`` so the
    cloud-only / local-only semantics of the boundary cuts survive.
    """
    k = table.k
    idx = np.arange(k, dtype=float)

    # linear fit of f through the origin offset
    coeffs = np.polyfit(idx, table.f, deg=1)
    f_fit = np.polyval(coeffs, idx)
    f_fit = np.maximum.accumulate(np.maximum(f_fit, 0.0))  # keep monotone, >= 0

    # exponential fit of g on the interior positions (g[-1]=0 breaks the log)
    interior = table.g[:-1] if keep_endpoints and table.g[-1] == 0 else table.g
    floor = max(float(interior.min()) * 0.5, 1e-9)
    log_g = np.log(np.maximum(interior, floor))
    slope, intercept = np.polyfit(idx[: len(interior)], log_g, deg=1)
    g_fit = np.exp(intercept + slope * idx)
    g_fit = np.minimum.accumulate(g_fit)  # enforce non-increasing

    if keep_endpoints:
        f_fit[0] = 0.0
        g_fit[-1] = 0.0

    return CostTable(
        model_name=f"{table.model_name}-prime",
        positions=table.positions,
        f=f_fit,
        g=g_fit,
        cloud=table.cloud.copy(),
        graph=table.graph,
    )
