"""The federated fleet: N gateways, one clock, one entry point.

A :class:`FleetGateway` instantiates one
:class:`~repro.serving.gateway.Gateway` per
:class:`~repro.fleet.config.ServerSpec`, all sharing a single
:class:`~repro.sim.engine.Engine` (one virtual clock; per-server
``_HeadIndex`` heaps keep dispatch exactly the single-gateway code), and
routes every arriving request through fleet admission → placement →
``server.submit``. Each server keeps its own uplink timeline, channel
estimator, fault injector, and resilience policy, so a blackout on one
uplink degrades one server while the rest keep offloading — and the
affinity placement policy migrates clients away from it.

:func:`run_system` is the single entry point the ROADMAP asked for: it
executes a :class:`~repro.fleet.config.SystemConfig` end to end
(workload generation, fleet run, invariant audit) and returns a
:class:`SystemReport`. The legacy ``run_scenario`` /
``run_fault_scenario`` entry points are thin deprecated wrappers over
it, test-locked byte-identical to their pre-fleet output.

Accounting is exact by construction: a request is either rejected at
the fleet boundary (never reaching a server) or submitted to exactly
one server, so per-server ``arrived`` counters plus fleet rejects tile
the fleet's arrivals — :func:`repro.fleet.invariants.fleet_accounting_violations`
audits exactly that, on top of every server's own conservation law.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.cloud.server import BatchingServer, LeastQueuedRouter
from repro.core.plans import json_safe
from repro.engine import PlanningEngine
from repro.faults.invariants import MonotoneClockMonitor, accounting_violations
from repro.fleet.config import ServerSpec, SystemConfig
from repro.fleet.invariants import fleet_accounting_violations
from repro.fleet.placement import Placer
from repro.obs.metrics import MetricsRegistry, StreamingHistogram
from repro.obs.slo import NULL_BOARD, SloBoard
from repro.obs.timeseries import NULL_HUB, TelemetryHub
from repro.obs.tracer import NullTracer, Tracer
from repro.serving.estimator import AdaptiveChannelEstimator
from repro.serving.gateway import Gateway, GatewayResult, ServedRecord
from repro.serving.workload import Request, generate_requests
from repro.sim.engine import Engine
from repro.sim.fast import FastEngine

__all__ = [
    "ENGINE_CORES",
    "FleetGateway",
    "FleetResult",
    "SystemReport",
    "events_by_kind",
    "run_system",
]

#: Event cores :func:`run_system` can drive a fleet on. ``fast`` is the
#: structure-of-arrays core (the default); ``heap`` is the original
#: binary-heap engine, kept as the parity oracle — both produce
#: byte-identical reports (see docs/performance.md).
ENGINE_CORES = ("fast", "heap")


def _make_engine(core: str) -> "Engine | FastEngine":
    if core == "fast":
        return FastEngine()
    if core == "heap":
        return Engine()
    raise ValueError(f"unknown engine core {core!r} (use one of {ENGINE_CORES})")

#: Trace lane of fleet-level instants (rejects, migrations).
FLEET_LANE = ("fleet", "events")


def events_by_kind(events: list[dict]) -> dict[str, int]:
    """Histogram of replan-event kinds (untagged events count as drift)."""
    out: dict[str, int] = {}
    for event in events:
        kind = event.get("kind", "drift")
        out[kind] = out.get(kind, 0) + 1
    return out


@dataclass
class FleetResult:
    """What one fleet run produced, before reporting."""

    makespan: float
    arrivals: int
    requests: list[Request]
    results: dict[str, GatewayResult]
    records: list[ServedRecord]        # fleet-boundary rejects only


class FleetGateway:
    """Admission + placement over named gateways on one shared engine."""

    def __init__(
        self,
        config: SystemConfig,
        planner: PlanningEngine | None = None,
        tracer: "Tracer | NullTracer | None" = None,
        engine: "Engine | FastEngine | None" = None,
    ) -> None:
        self.config = config
        self.planner = planner or PlanningEngine()
        self.tracer = tracer or NullTracer()
        # one shared virtual clock for every server; the SoA core by
        # default, the heap core (or any compatible engine) on request
        self.engine = engine if engine is not None else FastEngine()
        self.metrics = MetricsRegistry()
        self.records: list[ServedRecord] = []
        self.per_server_arrivals: dict[str, int] = {}
        self.servers: dict[str, Gateway] = {}
        # strictly opt-in windowed telemetry + SLO board (null twins keep
        # the disabled path byte-identical to the pre-telemetry code)
        obs = config.observability
        self.telemetry = (
            TelemetryHub(bucket_width=obs.telemetry_bucket)
            if obs.telemetry
            else NULL_HUB
        )
        self.slo_board = (
            SloBoard(obs.slos, tracer=self.tracer, metrics=self.metrics)
            if obs.slos
            else NULL_BOARD
        )
        # opt-in shared batching cloud: K hold-and-batch GPUs on the one
        # fleet engine, gateway i riding GPU i % K (absent CloudConfig,
        # every gateway keeps its private free GPU — golden-locked path)
        self.cloud_pool: list[BatchingServer] = []
        self.cloud_of: dict[str, BatchingServer | LeastQueuedRouter] = {}
        self.cloud_router: LeastQueuedRouter | None = None
        if config.cloud is not None:
            self.cloud_pool = [
                BatchingServer(
                    self.engine,
                    model=config.cloud.model,
                    max_batch=config.cloud.max_batch,
                    max_wait=config.cloud.max_wait,
                    policy=config.cloud.policy,
                    name=f"cloud-gpu{k}",
                    tracer=self.tracer,
                    telemetry=self.telemetry,
                )
                for k in range(config.cloud.gpus)
            ]
            # least-queued assignment shares one router across servers;
            # a single-GPU pool routes identically either way, so it
            # keeps the direct wiring (and the PR 7 byte-identity)
            if config.cloud.assignment == "least_queued" and len(self.cloud_pool) > 1:
                self.cloud_router = LeastQueuedRouter(self.cloud_pool)
        named = config.observability.per_server_lanes
        for index, spec in enumerate(config.servers):
            cloud: BatchingServer | LeastQueuedRouter | None = None
            if self.cloud_router is not None:
                cloud = self.cloud_router
            elif self.cloud_pool:
                cloud = self.cloud_pool[index % len(self.cloud_pool)]
            if cloud is not None:
                self.cloud_of[spec.name] = cloud
            self.servers[spec.name] = self._build_server(spec, named, cloud)
            self.per_server_arrivals[spec.name] = 0
        self.placer = Placer(
            config.placement,
            self.servers,
            cloud_of=self.cloud_of or None,
            tracer=self.tracer,
            metrics=self.metrics,
            telemetry=self.telemetry,
            events=config.observability.fleet_events,
        )

    def _planner_for(self, spec: ServerSpec) -> PlanningEngine:
        if spec.mobile_speedup == 1.0 and spec.cloud_speedup == 1.0:
            # homogeneous servers share the fleet planner: one warm
            # structure cache prices every re-plan on every server
            return self.planner
        return PlanningEngine(
            mobile=self.planner.mobile.scaled(spec.mobile_speedup),
            cloud=self.planner.cloud.scaled(spec.cloud_speedup),
            max_entries=self.planner.max_entries,
            tracer=self.planner.tracer,
        )

    def _build_server(
        self,
        spec: ServerSpec,
        named: bool,
        cloud: "BatchingServer | LeastQueuedRouter | None" = None,
    ) -> Gateway:
        config = self.config
        timeline = config.timeline_for(spec)
        return Gateway(
            timeline=timeline,
            planner=self._planner_for(spec),
            scheme=config.scheme,
            estimator=AdaptiveChannelEstimator(
                initial_bps=timeline.rates_bps[0],
                alpha=config.channel.ewma_alpha,
                drift_threshold=config.channel.drift_threshold,
                setup_latency=config.channel.setup_latency,
                header_bytes=config.channel.header_bytes,
                protocol_overhead=config.channel.protocol_overhead,
            ),
            max_queue_depth=spec.max_queue_depth,
            nominal_burst=spec.nominal_burst,
            include_cloud=spec.include_cloud,
            tracer=self.tracer,
            resilience=config.resilience_for(spec),
            # a FaultPlan becomes a fresh injector per gateway, so servers
            # (and reruns) never share mutable fault state
            faults=config.fault_plan_for(spec),
            engine=self.engine,
            name=spec.name if named else None,
            cloud_server=cloud,
            telemetry=self.telemetry,
            slo=self.slo_board,
        )

    # ------------------------------------------------------------------
    @property
    def outstanding(self) -> int:
        """Admitted-but-unfinished requests across the whole fleet."""
        return sum(server.outstanding for server in self.servers.values())

    def submit(self, request: Request) -> None:
        """Route one arriving request: fleet admission, then placement."""
        self.metrics.counter("arrived").increment()
        if self.telemetry.enabled:
            self.telemetry.record("fleet_arrivals", self.engine.now)
        limit = self.config.admission.max_fleet_outstanding
        if limit is not None and self.outstanding >= limit:
            self.metrics.counter("rejected_fleet").increment()
            self.records.append(
                ServedRecord(request.request_id, request.client_id, "rejected", None)
            )
            if self.config.observability.fleet_events:
                self.tracer.instant(
                    "fleet/reject",
                    timestamp=self.engine.now,
                    lane=FLEET_LANE,
                    request_id=request.request_id,
                    client=request.client_id,
                    outstanding=self.outstanding,
                )
            if self.telemetry.enabled:
                self.telemetry.record(
                    "dropped", self.engine.now, server="fleet", reason="fleet_reject"
                )
            if self.slo_board.enabled:
                self.slo_board.outcome(self.engine.now, False)
            return
        migrations_before = len(self.placer.migrations)
        name = self.placer.place(request, self.engine.now)
        if (
            self.config.observability.fleet_events
            and len(self.placer.migrations) > migrations_before
        ):
            self.tracer.instant(
                "fleet/migrate",
                timestamp=self.engine.now,
                lane=FLEET_LANE,
                **self.placer.migrations[-1],
            )
        self.per_server_arrivals[name] += 1
        if (
            self.config.observability.fleet_events
            and self.tracer.enabled
            and self.placer.last_decision is not None
        ):
            # the placement decision joins the request's trace tree as a
            # child span when the request finishes on its server
            self.servers[name].note_placement(
                request.request_id, **self.placer.last_decision
            )
        self.servers[name].submit(request)

    def _submitter(self, request: Request):
        return lambda: self.submit(request)

    def run(self, requests: list[Request], until: float | None = None) -> FleetResult:
        """Serve a request stream; drains fully unless ``until`` is set."""
        for request in sorted(requests, key=lambda r: (r.arrival, r.request_id)):
            self.engine.schedule(
                request.arrival - self.engine.now, self._submitter(request)
            )
        makespan = self.engine.run(until=until)
        # end-of-run SLO pass: publishes burn-rate gauges and leaves any
        # still-burning alert active (no forced clear)
        self.slo_board.finalize(makespan)
        return FleetResult(
            makespan=makespan,
            arrivals=len(requests),
            requests=list(requests),
            results={
                name: server.collect(makespan)
                for name, server in self.servers.items()
            },
            records=self.records,
        )

    # ------------------------------------------------------------------
    def report(self, result: FleetResult) -> dict:
        """The system document: per-server audit blocks + fleet totals."""
        deadlines = {r.request_id: r.deadline for r in result.requests}
        servers: dict[str, dict] = {}
        totals = {"served": 0, "degraded": 0, "dropped": 0, "pending": 0}
        arrived_servers = completed_total = within_total = 0
        for name, res in result.results.items():
            gateway = self.servers[name]
            raw = gateway.report(res)
            counters = raw["counters"]
            completed = [rec for rec in res.records if rec.latency is not None]
            within = sum(
                1
                for rec in completed
                if deadlines.get(rec.request_id) is None
                or rec.latency <= deadlines[rec.request_id]
            )
            servers[name] = {
                "report": raw,
                "completed": len(completed),
                "within_deadline": within,
                "events": events_by_kind(gateway.replan_events),
                "violations": accounting_violations(raw),
            }
            for key in totals:
                totals[key] += counters.get(key, 0) if key != "pending" else res.pending
            arrived_servers += counters.get("arrived", 0)
            completed_total += len(completed)
            within_total += within
        snapshot = self.metrics.snapshot()["counters"]
        # fleet-wide completion-latency distribution: the per-server
        # DDSketch histograms share one bucket grid, so the merge keeps
        # the same relative-error bound on p50/p95/p99
        latency = StreamingHistogram(self.metrics.relative_accuracy)
        for gateway in self.servers.values():
            latency.merge(gateway.metrics.histogram("latency"))
        fleet = {
            "arrivals": result.arrivals,
            "arrived_servers": arrived_servers,
            "rejected_fleet": snapshot.get("rejected_fleet", 0),
            **totals,
            "completed": completed_total,
            "within_deadline": within_total,
            "makespan": result.makespan,
            "throughput_rps": totals["served"] / max(result.makespan, 1e-12),
            # sustained throughput under open arrivals: completions per
            # second of the arrival window, the objective that matters
            # once the cloud stage saturates (vs. one-shot makespan)
            "sustained_rps": completed_total / self.config.workload.horizon,
            "latency": latency.as_dict(),
            "placement": {
                "policy": self.config.placement.policy,
                "assignments": dict(self.placer.assignments),
                "per_server_arrivals": dict(self.per_server_arrivals),
                "migrations": list(self.placer.migrations),
            },
        }
        if self.cloud_pool:
            config = self.config.cloud
            fleet["cloud"] = {
                "gpus": len(self.cloud_pool),
                "policy": config.policy,
                "max_batch": config.max_batch,
                "max_wait": config.max_wait,
                "model": config.model.as_dict(),
                "servers": [gpu.stats() for gpu in self.cloud_pool],
                "assignment_policy": config.assignment,
                "assignment": {
                    name: gpu.name for name, gpu in self.cloud_of.items()
                },
            }
            if self.cloud_router is not None:
                fleet["cloud"]["routed"] = dict(self.cloud_router.routed)
            # per-GPU busy fraction as registry gauges, Prometheus-ready
            horizon = max(result.makespan, 1e-12)
            for gpu in self.cloud_pool:
                self.metrics.gauge("gpu_busy_fraction", gpu=gpu.name).set(
                    gpu.resource.total_busy_time / horizon
                )
        document = {"servers": servers, "fleet": fleet}
        if self.telemetry.enabled:
            timeline = self.telemetry.timeline()
            # full fleet registry snapshot rides along so one artifact
            # feeds both the ASCII renderers and Prometheus exposition
            timeline["metrics"] = self.metrics.snapshot()
            document["timeline"] = timeline
        if self.slo_board.enabled:
            document["alerts"] = self.slo_board.report()
        return document


@dataclass(frozen=True)
class SystemReport:
    """Audited outcome of one :func:`run_system` execution.

    ``servers`` maps server name → audit block (raw gateway report,
    completion/deadline counts, replan-event census, per-server
    accounting violations); ``fleet`` holds the tiled totals and the
    placement record. ``baseline``/``comparison`` are present only when
    :class:`~repro.fleet.config.FaultsConfig` asked for the no-policy
    comparison run.
    """

    config: dict
    arrivals: int
    offered_load_rps: float
    makespan: float
    servers: dict
    fleet: dict
    violations: tuple[str, ...]
    clock_violations: tuple[str, ...]
    baseline: "SystemReport | None" = None
    comparison: dict | None = field(default=None)
    # opt-in observability artifacts (None unless the config enables
    # telemetry / declares SLOs — absent keys keep the golden identical)
    timeline: dict | None = field(default=None)
    alerts: dict | None = field(default=None)

    @property
    def ok(self) -> bool:
        """True when every accounting and clock invariant held."""
        return not self.violations and not self.clock_violations

    @property
    def served(self) -> int:
        return self.fleet["served"]

    @property
    def within_deadline(self) -> int:
        return self.fleet["within_deadline"]

    @property
    def p99_latency(self) -> float:
        """Fleet-wide p99 completion latency (merged server histograms)."""
        return self.fleet["latency"]["p99"]

    @property
    def sustained_rps(self) -> float:
        """Completions per second of the arrival window."""
        return self.fleet["sustained_rps"]

    def as_dict(self) -> dict:
        """JSON-safe document (what ``repro fleet --json`` writes)."""
        out = {
            "config": self.config,
            "arrivals": self.arrivals,
            "offered_load_rps": self.offered_load_rps,
            "makespan": self.makespan,
            "servers": self.servers,
            "fleet": self.fleet,
            "violations": list(self.violations),
            "clock_violations": list(self.clock_violations),
        }
        if self.baseline is not None:
            out["baseline"] = self.baseline.as_dict()
        if self.comparison is not None:
            out["comparison"] = self.comparison
        if self.timeline is not None:
            out["timeline"] = self.timeline
        if self.alerts is not None:
            out["alerts"] = self.alerts
        return json_safe(out)


def _run_once(
    config: SystemConfig,
    planner: PlanningEngine,
    tracer: "Tracer | NullTracer | None",
    core: str = "fast",
) -> SystemReport:
    workload = config.workload
    requests = generate_requests(
        list(workload.clients), workload.horizon, workload.seed
    )
    fleet = FleetGateway(config, planner=planner, tracer=tracer, engine=_make_engine(core))
    clock = MonotoneClockMonitor().attach(fleet.engine)
    result = fleet.run(requests)
    document = fleet.report(result)
    return SystemReport(
        config=config.as_dict(),
        arrivals=len(requests),
        offered_load_rps=len(requests) / workload.horizon,
        makespan=result.makespan,
        servers=document["servers"],
        fleet=document["fleet"],
        violations=tuple(fleet_accounting_violations(document)),
        clock_violations=tuple(clock.violations),
        timeline=document.get("timeline"),
        alerts=document.get("alerts"),
    )


def run_system(
    config: SystemConfig,
    planner: PlanningEngine | None = None,
    tracer: "Tracer | NullTracer | None" = None,
    core: str = "fast",
) -> SystemReport:
    """Execute a :class:`SystemConfig` end to end (see module docstring).

    ``planner`` is shared across servers and both comparison passes on
    purpose — the bandwidth-independent structure caches are what make
    fleet-scale re-planning affordable. When
    ``config.faults.compare_no_policy`` is set, the identical arrival
    stream is replayed with every resilience policy stripped (bare pass
    untraced, exactly like the legacy fault scenario) and the report
    carries the baseline plus a policy-vs-no-policy comparison.

    ``core`` picks the event engine (:data:`ENGINE_CORES`): ``"fast"``
    is the structure-of-arrays core, ``"heap"`` the original engine.
    Reports are byte-identical across cores — the hypothesis parity
    suite (``tests/test_engine_parity.py``) holds them to that.
    """
    planner = planner or PlanningEngine()
    if config.faults is None or not config.faults.compare_no_policy:
        return _run_once(config, planner, tracer, core)

    # policy pass first (traced), then the stripped baseline untraced —
    # the order and span the legacy fault scenario is golden-locked to
    obs = tracer or NullTracer()
    with obs.span("faults/policy", lane=("scenario", "policy")):
        report = _run_once(config, planner, tracer, core)
    bare = _run_once(config.without_resilience(), planner, None, core)

    def _census(rep: SystemReport, kind: str) -> int:
        return sum(block["events"].get(kind, 0) for block in rep.servers.values())

    comparison = {
        "within_deadline_policy": report.fleet["within_deadline"],
        "within_deadline_no_policy": bare.fleet["within_deadline"],
        "within_deadline_gain": (
            report.fleet["within_deadline"] - bare.fleet["within_deadline"]
        ),
        "degradations": _census(report, "degrade"),
        "recovery_replans": _census(report, "recovery"),
    }
    return replace(report, baseline=bare, comparison=comparison)
