"""Multi-server fleet serving behind the unified scenario API.

``SystemConfig`` describes a whole run (workload, N heterogeneous
servers with per-uplink fault plans, placement, admission, channel,
observability) as one JSON-round-trippable dataclass hierarchy;
``run_system`` executes it and returns an audited ``SystemReport``.
See :mod:`repro.fleet.config` and :mod:`repro.fleet.fleet` for the
design notes, and docs/serving.md for the user-facing tour.
"""

from repro.fleet.config import (
    PLACEMENT_POLICIES,
    SCENARIO_SLO,
    SLO_SCENARIOS,
    AdmissionConfig,
    ChannelConfig,
    FaultsConfig,
    ObservabilityConfig,
    PlacementConfig,
    ServerSpec,
    SystemConfig,
    WorkloadConfig,
    blackout_fleet_scenario,
    capacity_scenario,
    contended_cloud_scenario,
    default_fleet,
    slo_acceptance_scenario,
    steady_fleet_scenario,
    with_slo_telemetry,
)
from repro.fleet.fleet import (
    ENGINE_CORES,
    FleetGateway,
    FleetResult,
    SystemReport,
    events_by_kind,
    run_system,
)
from repro.fleet.invariants import fleet_accounting_violations
from repro.fleet.placement import Placer

__all__ = [
    "ENGINE_CORES",
    "PLACEMENT_POLICIES",
    "SCENARIO_SLO",
    "SLO_SCENARIOS",
    "AdmissionConfig",
    "ChannelConfig",
    "FaultsConfig",
    "FleetGateway",
    "FleetResult",
    "ObservabilityConfig",
    "Placer",
    "PlacementConfig",
    "ServerSpec",
    "SystemConfig",
    "SystemReport",
    "WorkloadConfig",
    "blackout_fleet_scenario",
    "capacity_scenario",
    "contended_cloud_scenario",
    "default_fleet",
    "events_by_kind",
    "fleet_accounting_violations",
    "run_system",
    "slo_acceptance_scenario",
    "steady_fleet_scenario",
    "with_slo_telemetry",
]
