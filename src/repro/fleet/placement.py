"""Client→server placement: which gateway serves the next request.

Three policies, selected by :class:`~repro.fleet.config.PlacementConfig`:

* ``least_loaded`` — every request goes to the server with the fewest
  outstanding (queued + in-flight) requests; ties break by server
  order. Stateless per request, the classic load balancer.
* ``eft`` — every request goes to the server with the smallest
  *estimated finish time*: each server prices the request's model at
  its estimator's current rate through the shared
  :meth:`~repro.engine.PlanningEngine.priced_table` kernel (a warm
  cache lookup, not a table build), takes the single-job optimal cut,
  and estimates ``outstanding × f + (f + g + cloud)`` — the backlog
  serialized on the mobile stage plus one request's own pipeline.
* ``affinity`` — each client binds to one server on first contact
  (least-loaded at that instant) and the binding is sticky. A binding
  *migrates* when its server has carried at least
  ``migration_backlog`` outstanding requests for
  ``migration_patience`` seconds of sustained overload, or the moment
  the server's resilience policy degrades it to local-only serving
  (``migrate_on_degraded``) — i.e. on sustained overload or uplink
  degradation, never on transient blips.

The placer only ever *reads* gateway state (``outstanding``,
``degraded_mode``, estimator rates); submission stays with the fleet.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.baselines import single_job_optimal_cut
from repro.fleet.config import PlacementConfig
from repro.obs.timeseries import NULL_HUB
from repro.obs.tracer import NullTracer
from repro.serving.gateway import Gateway
from repro.serving.workload import Request

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.cloud.server import BatchingServer

__all__ = ["Placer"]

#: Trace lane of placement instants — same lane as the fleet's
#: reject/migrate markers so one track tells the whole routing story.
PLACEMENT_LANE = ("fleet", "events")


class Placer:
    """Stateful placement + migration over a named set of gateways."""

    def __init__(
        self,
        config: PlacementConfig,
        servers: dict[str, Gateway],
        cloud_of: "dict[str, BatchingServer] | None" = None,
        tracer=None,
        metrics=None,
        telemetry=None,
        events: bool = False,
    ) -> None:
        self.config = config
        self.servers = servers
        # server -> shared batching GPU, when the fleet runs a shared
        # cloud: lets the EFT scorer price the GPU queue it would join
        self.cloud_of = cloud_of or {}
        # decision observability: labeled counters in the fleet registry,
        # windowed telemetry, and (when ``events``) per-decision trace
        # instants on the fleet lane
        self.tracer = tracer or NullTracer()
        self.metrics = metrics
        self.telemetry = telemetry if telemetry is not None else NULL_HUB
        self.events = events
        #: The most recent decision: {"server", "policy", "eft"(opt)} —
        #: the fleet attaches it to the request's trace tree.
        self.last_decision: dict | None = None
        self._order = list(servers)
        #: last (or sticky) server per client — the report's assignment map
        self.assignments: dict[str, str] = {}
        #: migration audit: {"time", "client", "from", "to", "reason"}
        self.migrations: list[dict] = []
        # overload clocks: when each server's backlog first crossed the
        # migration threshold (None while below it), sampled at arrivals
        self._overloaded_since: dict[str, float | None] = {
            name: None for name in servers
        }

    # ------------------------------------------------------------------
    # scorers
    # ------------------------------------------------------------------
    def _least_loaded(self, exclude: str | None = None) -> str:
        best = None
        best_load = None
        for name in self._order:
            if name == exclude:
                continue
            load = self.servers[name].outstanding
            if best_load is None or load < best_load:
                best, best_load = name, load
        assert best is not None
        return best

    def _finish_time(self, name: str, request: Request) -> float:
        server = self.servers[name]
        estimator = server.estimator
        priced = server.planner.priced_table(
            request.model,
            estimator.estimate_bps,
            setup_latency=estimator.setup_latency,
            header_bytes=estimator.header_bytes,
            protocol_overhead=estimator.protocol_overhead,
        )
        cut = single_job_optimal_cut(priced.table, include_cloud=server.include_cloud)
        f, g = priced.table.stage_lengths(cut)
        unit = f + g + priced.table.cloud_rest(cut)
        # backlog serializes on the mobile stage; the new request then
        # pays its own full pipeline
        eft = server.outstanding * f + unit
        cloud = self.cloud_of.get(name)
        if cloud is not None:
            # shared batching cloud: also pay the queue of formed-but-
            # unfinished batches (plus the current hold) on this
            # server's GPU — two servers tied on mobile backlog now
            # split by how congested their cloud lane is
            eft += cloud.queue_delay()
        return eft

    def _eft(self, request: Request) -> tuple[str, float]:
        best = None
        best_eft = None
        for name in self._order:
            eft = self._finish_time(name, request)
            if best_eft is None or eft < best_eft:
                best, best_eft = name, eft
        assert best is not None and best_eft is not None
        return best, best_eft

    # ------------------------------------------------------------------
    # migration
    # ------------------------------------------------------------------
    def _update_overload_clocks(self, now: float) -> None:
        threshold = self.config.migration_backlog
        if threshold is None:
            return
        for name, server in self.servers.items():
            if server.outstanding >= threshold:
                if self._overloaded_since[name] is None:
                    self._overloaded_since[name] = now
            else:
                self._overloaded_since[name] = None

    def _migration_reason(self, name: str, now: float) -> str | None:
        server = self.servers[name]
        if self.config.migrate_on_degraded and server.degraded_mode:
            return "degraded"
        since = self._overloaded_since.get(name)
        if since is not None and now - since >= self.config.migration_patience:
            return "overload"
        return None

    # ------------------------------------------------------------------
    # the one entry point
    # ------------------------------------------------------------------
    def place(self, request: Request, now: float) -> str:
        """Pick the serving gateway for one arriving request."""
        policy = self.config.policy
        estimate = None
        if policy == "least_loaded":
            name = self._least_loaded()
        elif policy == "eft":
            name, estimate = self._eft(request)
        else:  # affinity
            name = self._place_affinity(request, now)
        self.assignments[request.client_id] = name
        self.last_decision = {"server": name, "policy": policy}
        if estimate is not None:
            self.last_decision["eft"] = estimate
        if self.metrics is not None:
            self.metrics.counter("placements", server=name).increment()
        if self.telemetry.enabled:
            self.telemetry.record("placements", now, server=name)
        if self.events and self.tracer.enabled:
            self.tracer.instant(
                "fleet/place",
                timestamp=now,
                lane=PLACEMENT_LANE,
                request_id=request.request_id,
                client=request.client_id,
                **self.last_decision,
            )
        return name

    def _place_affinity(self, request: Request, now: float) -> str:
        self._update_overload_clocks(now)
        bound = self.assignments.get(request.client_id)
        if bound is None:
            return self._least_loaded()
        if len(self.servers) == 1:
            return bound
        reason = self._migration_reason(bound, now)
        if reason is None:
            return bound
        target = self._least_loaded(exclude=bound)
        healthy = not (
            self.config.migrate_on_degraded and self.servers[target].degraded_mode
        )
        # only move when the destination is actually better off —
        # fleet-wide overload must not trigger migration storms
        if healthy and (
            reason == "degraded"
            or self.servers[target].outstanding < self.servers[bound].outstanding
        ):
            self.migrations.append(
                {
                    "time": now,
                    "client": request.client_id,
                    "from": bound,
                    "to": target,
                    "reason": reason,
                }
            )
            if self.metrics is not None:
                self.metrics.counter("migrations", reason=reason).increment()
            if self.telemetry.enabled:
                self.telemetry.record("migrations", now, reason=reason)
            return target
        return bound
