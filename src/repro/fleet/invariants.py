"""Fleet-level conservation laws, audited on every ``run_system``.

Single-gateway accounting (:func:`repro.faults.invariants.accounting_violations`)
guarantees ``served + degraded + dropped + pending == arrived`` per
server. The fleet adds a tiling law on top: every fleet arrival is
either rejected at the fleet boundary or submitted to exactly one
server, so the per-server sums must tile the fleet totals *exactly* —
no request double-counted by a migration, none lost between admission
and placement.
"""

from __future__ import annotations

from repro.faults.invariants import accounting_violations

__all__ = ["fleet_accounting_violations"]


def fleet_accounting_violations(document: dict) -> list[str]:
    """Every broken invariant in a fleet report document (empty == sound).

    ``document`` is the ``{"servers": ..., "fleet": ...}`` mapping built
    by :meth:`repro.fleet.fleet.FleetGateway.report`.
    """
    problems: list[str] = []
    servers: dict = document["servers"]
    fleet: dict = document["fleet"]
    arrivals = fleet["arrivals"]
    rejected = fleet.get("rejected_fleet", 0)

    arrived_sum = 0
    outcome_sum = 0
    for name, block in servers.items():
        raw = block["report"]
        for violation in accounting_violations(raw):
            problems.append(f"server {name}: {violation}")
        counters = raw["counters"]
        arrived_sum += counters.get("arrived", 0)
        outcome_sum += (
            counters.get("served", 0)
            + counters.get("degraded", 0)
            + counters.get("dropped", 0)
            + raw.get("pending", 0)
        )
        if block["within_deadline"] > block["completed"]:
            problems.append(
                f"server {name}: within_deadline {block['within_deadline']} "
                f"exceeds completed {block['completed']}"
            )
        placed = fleet["placement"]["per_server_arrivals"].get(name)
        if placed is not None and placed != counters.get("arrived", 0):
            problems.append(
                f"server {name}: placement routed {placed} requests but the "
                f"server counted {counters.get('arrived', 0)} arrivals"
            )

    if arrived_sum + rejected != arrivals:
        problems.append(
            f"fleet arrivals do not tile: {arrived_sum} reached servers + "
            f"{rejected} rejected != {arrivals} arrived"
        )
    if outcome_sum + rejected != arrivals:
        problems.append(
            f"fleet outcomes do not tile: {outcome_sum} server outcomes + "
            f"{rejected} rejected != {arrivals} arrived"
        )
    return problems
