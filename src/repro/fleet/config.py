"""The unified scenario surface: one ``SystemConfig``, one entry point.

The serving stack had accreted three overlapping ways to describe a
run — ``serving.ScenarioConfig``/``run_scenario``, the fault-scenario
knobs of ``faults.run_fault_scenario``, and the ``repro serve`` CLI
flags. :class:`SystemConfig` collapses them into one JSON-round-trippable
dataclass hierarchy and adds what none of them could express: a *fleet*
of edge/cloud servers.

The hierarchy mirrors the questions a run must answer:

* :class:`WorkloadConfig` — who sends requests (clients, horizon, seed);
* :class:`ServerSpec` — one edge/cloud server: its own uplink
  :class:`~repro.net.timeline.BandwidthTimeline`, heterogeneous device
  speedups, queue bounds, and optional per-uplink
  :class:`~repro.faults.plan.FaultPlan` /
  :class:`~repro.faults.policy.ResiliencePolicy`;
* :class:`PlacementConfig` — how clients map to servers (least-loaded,
  sticky affinity with migration, estimated-finish-time);
* :class:`AdmissionConfig` — fleet-level admission control;
* :class:`ChannelConfig` — estimator/framing constants shared by every
  uplink;
* :class:`FaultsConfig` — the old ``run_fault_scenario`` knobs as a
  sub-config: a fleet-wide fault plan + resilience policy and the
  policy-vs-no-policy comparison switch;
* :class:`~repro.cloud.config.CloudConfig` — opt-in shared batching
  cloud: N gateways contend for K hold-and-batch GPUs instead of each
  getting a free private one (absent: pre-batching behavior, golden
  byte-identical);
* :class:`ObservabilityConfig` — per-server trace lanes and fleet
  placement/migration instant events.

:func:`repro.fleet.run_system` executes a :class:`SystemConfig` and
returns a :class:`~repro.fleet.fleet.SystemReport`. The old entry
points remain as thin deprecated wrappers (byte-identical outputs,
test-locked against ``tests/data/golden_system_compat.json``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.cloud.config import CloudConfig
from repro.cloud.model import CloudGpuModel
from repro.faults.plan import Blackout, FaultPlan
from repro.faults.policy import ResiliencePolicy
from repro.net.channel import DEFAULT_HEADER_BYTES, DEFAULT_SETUP_LATENCY
from repro.obs.slo import SloConfig, default_slos
from repro.net.timeline import BandwidthTimeline
from repro.serving.gateway import GATEWAY_SCHEMES
from repro.serving.workload import ClientSpec
from repro.utils.rng import DEFAULT_SEED
from repro.utils.validation import require_positive

__all__ = [
    "PLACEMENT_POLICIES",
    "WorkloadConfig",
    "ServerSpec",
    "PlacementConfig",
    "AdmissionConfig",
    "ChannelConfig",
    "FaultsConfig",
    "ObservabilityConfig",
    "SystemConfig",
    "default_fleet",
    "capacity_scenario",
    "contended_cloud_scenario",
    "blackout_fleet_scenario",
    "steady_fleet_scenario",
    "with_slo_telemetry",
    "SCENARIO_SLO",
    "slo_acceptance_scenario",
    "SLO_SCENARIOS",
]

#: Client→server placement policies :mod:`repro.fleet.placement` knows.
PLACEMENT_POLICIES = ("least_loaded", "affinity", "eft")


def _client_as_dict(client: ClientSpec) -> dict:
    return {
        "name": client.name,
        "model": client.model,
        "process": client.process,
        "rate": client.rate,
        "burst_size": client.burst_size,
        "period": client.period,
        "deadline": client.deadline,
    }


@dataclass(frozen=True)
class WorkloadConfig:
    """The request side of a system run: clients, horizon, and seed."""

    clients: tuple[ClientSpec, ...]
    horizon: float = 60.0
    seed: int = DEFAULT_SEED

    def __post_init__(self) -> None:
        object.__setattr__(self, "clients", tuple(self.clients))
        if not self.clients:
            raise ValueError("need at least one client")
        require_positive(self.horizon, "horizon")

    def as_dict(self) -> dict:
        return {
            "clients": [_client_as_dict(c) for c in self.clients],
            "horizon": self.horizon,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadConfig":
        return cls(
            clients=tuple(ClientSpec(**c) for c in data["clients"]),
            horizon=data.get("horizon", 60.0),
            seed=data.get("seed", DEFAULT_SEED),
        )


@dataclass(frozen=True)
class ChannelConfig:
    """Estimator + framing constants shared by every server uplink."""

    ewma_alpha: float = 0.3
    drift_threshold: float = 0.25
    setup_latency: float = DEFAULT_SETUP_LATENCY
    header_bytes: float = DEFAULT_HEADER_BYTES
    protocol_overhead: float = 1.05

    def as_dict(self) -> dict:
        return {
            "ewma_alpha": self.ewma_alpha,
            "drift_threshold": self.drift_threshold,
            "setup_latency": self.setup_latency,
            "header_bytes": self.header_bytes,
            "protocol_overhead": self.protocol_overhead,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ChannelConfig":
        return cls(**data)


@dataclass(frozen=True)
class ServerSpec:
    """One edge/cloud server of the fleet.

    ``bandwidth_steps`` is this server's own uplink trace (so PR 5
    fault plans compose *per link*); ``mobile_speedup``/``cloud_speedup``
    scale the calibrated device profiles
    (:meth:`repro.profiling.device.DeviceModel.scaled`) for
    heterogeneous hardware. ``fault_plan``/``resilience`` override the
    fleet-wide :class:`FaultsConfig` for this uplink only.
    """

    name: str
    bandwidth_steps: tuple[tuple[float, float], ...] = ((0.0, 8.0),)
    mobile_speedup: float = 1.0
    cloud_speedup: float = 1.0
    max_queue_depth: int = 64
    nominal_burst: int = 8
    include_cloud: bool = True
    fault_plan: FaultPlan | None = None
    resilience: ResiliencePolicy | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("server name must be non-empty")
        object.__setattr__(
            self, "bandwidth_steps", tuple(tuple(s) for s in self.bandwidth_steps)
        )
        if not self.bandwidth_steps:
            raise ValueError("need at least one bandwidth step")
        require_positive(self.mobile_speedup, "mobile_speedup")
        require_positive(self.cloud_speedup, "cloud_speedup")
        require_positive(self.max_queue_depth, "max_queue_depth")
        require_positive(self.nominal_burst, "nominal_burst")

    def as_dict(self) -> dict:
        out: dict = {
            "name": self.name,
            "bandwidth_steps": [list(s) for s in self.bandwidth_steps],
            "mobile_speedup": self.mobile_speedup,
            "cloud_speedup": self.cloud_speedup,
            "max_queue_depth": self.max_queue_depth,
            "nominal_burst": self.nominal_burst,
            "include_cloud": self.include_cloud,
        }
        if self.fault_plan is not None:
            out["fault_plan"] = self.fault_plan.as_dict()
        if self.resilience is not None:
            out["resilience"] = self.resilience.as_dict()
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "ServerSpec":
        plan = data.get("fault_plan")
        policy = data.get("resilience")
        return cls(
            name=data["name"],
            bandwidth_steps=tuple(tuple(s) for s in data["bandwidth_steps"]),
            mobile_speedup=data.get("mobile_speedup", 1.0),
            cloud_speedup=data.get("cloud_speedup", 1.0),
            max_queue_depth=data.get("max_queue_depth", 64),
            nominal_burst=data.get("nominal_burst", 8),
            include_cloud=data.get("include_cloud", True),
            fault_plan=None if plan is None else FaultPlan.from_dict(plan),
            resilience=None if policy is None else ResiliencePolicy.from_dict(policy),
        )


@dataclass(frozen=True)
class PlacementConfig:
    """How clients map to servers, and when a binding migrates.

    ``least_loaded`` and ``eft`` place every request independently
    (fewest outstanding requests / smallest estimated finish time
    through :meth:`~repro.engine.PlanningEngine.priced_table`).
    ``affinity`` binds each client to one server on first contact and
    keeps the binding sticky; a binding migrates when its server has
    held ``migration_backlog`` or more outstanding requests for at
    least ``migration_patience`` seconds, or — when
    ``migrate_on_degraded`` — the instant the server's resilience
    policy degrades it to local-only serving.
    """

    policy: str = "least_loaded"
    migration_backlog: int | None = None
    migration_patience: float = 2.0
    migrate_on_degraded: bool = True

    def __post_init__(self) -> None:
        if self.policy not in PLACEMENT_POLICIES:
            raise ValueError(
                f"unknown placement policy {self.policy!r} (use {PLACEMENT_POLICIES})"
            )
        if self.migration_backlog is not None:
            require_positive(self.migration_backlog, "migration_backlog")
        require_positive(self.migration_patience, "migration_patience")

    def as_dict(self) -> dict:
        return {
            "policy": self.policy,
            "migration_backlog": self.migration_backlog,
            "migration_patience": self.migration_patience,
            "migrate_on_degraded": self.migrate_on_degraded,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PlacementConfig":
        return cls(**data)


@dataclass(frozen=True)
class AdmissionConfig:
    """Fleet-level admission control, ahead of any per-server queue.

    ``max_fleet_outstanding`` caps the total admitted-but-unfinished
    requests across all servers; arrivals beyond it are rejected at the
    fleet boundary (they never reach a server, so per-server accounting
    still tiles: per-server arrivals + fleet rejects == fleet arrivals).
    """

    max_fleet_outstanding: int | None = None

    def __post_init__(self) -> None:
        if self.max_fleet_outstanding is not None:
            require_positive(self.max_fleet_outstanding, "max_fleet_outstanding")

    def as_dict(self) -> dict:
        return {"max_fleet_outstanding": self.max_fleet_outstanding}

    @classmethod
    def from_dict(cls, data: dict) -> "AdmissionConfig":
        return cls(**data)


@dataclass(frozen=True)
class FaultsConfig:
    """The old ``run_fault_scenario`` knobs as a ``SystemConfig`` block.

    ``plan`` applies to every uplink that does not carry its own
    per-server plan; ``resilience`` likewise. ``compare_no_policy``
    reruns the identical arrival stream with every resilience policy
    stripped and attaches the baseline + comparison to the report —
    exactly what ``run_fault_scenario`` produced.
    """

    plan: FaultPlan | None = None
    resilience: ResiliencePolicy | None = None
    compare_no_policy: bool = False

    def as_dict(self) -> dict:
        out: dict = {"compare_no_policy": self.compare_no_policy}
        if self.plan is not None:
            out["plan"] = self.plan.as_dict()
        if self.resilience is not None:
            out["resilience"] = self.resilience.as_dict()
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FaultsConfig":
        plan = data.get("plan")
        policy = data.get("resilience")
        return cls(
            plan=None if plan is None else FaultPlan.from_dict(plan),
            resilience=None if policy is None else ResiliencePolicy.from_dict(policy),
            compare_no_policy=data.get("compare_no_policy", False),
        )


@dataclass(frozen=True)
class ObservabilityConfig:
    """What the fleet emits into a live tracer.

    ``per_server_lanes`` names each gateway so its request/event lanes
    read ``<server>/req N`` in the exported trace; ``fleet_events``
    adds ``fleet/migrate`` and ``fleet/reject`` instant markers. Both
    are off on the legacy-wrapper path so single-gateway traces stay
    byte-identical to the pre-fleet code.

    ``telemetry`` turns on the windowed
    :class:`~repro.obs.timeseries.TelemetryHub` (arrival/outcome/queue/
    batch series bucketed every ``telemetry_bucket`` virtual seconds →
    ``SystemReport.timeline``); ``slos`` declares burn-rate objectives
    evaluated online by an :class:`~repro.obs.slo.SloBoard` →
    ``SystemReport.alerts``. Both default off so the fault-free
    ``run_system`` output stays byte-identical to the golden.
    """

    per_server_lanes: bool = True
    fleet_events: bool = True
    telemetry: bool = False
    telemetry_bucket: float = 0.5
    slos: tuple[SloConfig, ...] = ()

    def __post_init__(self) -> None:
        require_positive(self.telemetry_bucket, "telemetry_bucket")
        object.__setattr__(self, "slos", tuple(self.slos))

    def as_dict(self) -> dict:
        out: dict = {
            "per_server_lanes": self.per_server_lanes,
            "fleet_events": self.fleet_events,
        }
        # new keys only when set, so legacy config dumps stay unchanged
        if self.telemetry:
            out["telemetry"] = True
            out["telemetry_bucket"] = self.telemetry_bucket
        if self.slos:
            out["slos"] = [s.as_dict() for s in self.slos]
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "ObservabilityConfig":
        return cls(
            per_server_lanes=data.get("per_server_lanes", True),
            fleet_events=data.get("fleet_events", True),
            telemetry=data.get("telemetry", False),
            telemetry_bucket=data.get("telemetry_bucket", 0.5),
            slos=tuple(SloConfig.from_dict(s) for s in data.get("slos", ())),
        )


@dataclass(frozen=True)
class SystemConfig:
    """One reproducible run of the whole system (see module docstring)."""

    workload: WorkloadConfig
    servers: tuple[ServerSpec, ...]
    scheme: str = "JPS"
    placement: PlacementConfig = field(default_factory=PlacementConfig)
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    channel: ChannelConfig = field(default_factory=ChannelConfig)
    faults: FaultsConfig | None = None
    cloud: CloudConfig | None = None
    observability: ObservabilityConfig = field(default_factory=ObservabilityConfig)

    def __post_init__(self) -> None:
        object.__setattr__(self, "servers", tuple(self.servers))
        if not self.servers:
            raise ValueError("need at least one server")
        names = [s.name for s in self.servers]
        if len(set(names)) != len(names):
            raise ValueError(f"server names must be unique, got {names}")
        if self.scheme not in GATEWAY_SCHEMES:
            raise ValueError(f"unknown scheme {self.scheme!r} (use {GATEWAY_SCHEMES})")

    # ------------------------------------------------------------------
    # effective per-server settings (spec overrides the fleet-wide block)
    # ------------------------------------------------------------------
    def fault_plan_for(self, spec: ServerSpec) -> FaultPlan | None:
        if spec.fault_plan is not None:
            return spec.fault_plan
        return self.faults.plan if self.faults is not None else None

    def resilience_for(self, spec: ServerSpec) -> ResiliencePolicy | None:
        if spec.resilience is not None:
            return spec.resilience
        return self.faults.resilience if self.faults is not None else None

    def timeline_for(self, spec: ServerSpec) -> BandwidthTimeline:
        """One server's ground-truth uplink, fault windows overlaid."""
        base = BandwidthTimeline.steps_mbps(
            list(spec.bandwidth_steps),
            setup_latency=self.channel.setup_latency,
            header_bytes=self.channel.header_bytes,
            protocol_overhead=self.channel.protocol_overhead,
        )
        plan = self.fault_plan_for(spec)
        return base if plan is None else plan.apply_to_timeline(base)

    def without_resilience(self) -> "SystemConfig":
        """The no-policy twin ``compare_no_policy`` runs as baseline."""
        servers = tuple(replace(s, resilience=None) for s in self.servers)
        faults = (
            None
            if self.faults is None
            else replace(self.faults, resilience=None, compare_no_policy=False)
        )
        return replace(self, servers=servers, faults=faults)

    # ------------------------------------------------------------------
    # wire format
    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        out = {
            "workload": self.workload.as_dict(),
            "servers": [s.as_dict() for s in self.servers],
            "scheme": self.scheme,
            "placement": self.placement.as_dict(),
            "admission": self.admission.as_dict(),
            "channel": self.channel.as_dict(),
            "observability": self.observability.as_dict(),
        }
        if self.faults is not None:
            out["faults"] = self.faults.as_dict()
        if self.cloud is not None:
            out["cloud"] = self.cloud.as_dict()
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "SystemConfig":
        faults = data.get("faults")
        cloud = data.get("cloud")
        return cls(
            workload=WorkloadConfig.from_dict(data["workload"]),
            servers=tuple(ServerSpec.from_dict(s) for s in data["servers"]),
            scheme=data.get("scheme", "JPS"),
            placement=PlacementConfig.from_dict(data.get("placement", {})),
            admission=AdmissionConfig.from_dict(data.get("admission", {})),
            channel=ChannelConfig.from_dict(data.get("channel", {})),
            faults=None if faults is None else FaultsConfig.from_dict(faults),
            cloud=None if cloud is None else CloudConfig.from_dict(cloud),
            observability=ObservabilityConfig.from_dict(data.get("observability", {})),
        )

    @classmethod
    def from_scenario(
        cls,
        config,
        scheme: str | None = None,
        compare_no_policy: bool = False,
        server_name: str = "gateway",
    ) -> "SystemConfig":
        """A single-server system equivalent to a legacy ``ScenarioConfig``.

        ``config`` is duck-typed (any object with the ``ScenarioConfig``
        attributes) so this module never imports the serving scenario —
        the legacy wrappers import *us*.
        """
        faults = None
        if config.fault_plan is not None or config.resilience is not None:
            faults = FaultsConfig(
                plan=config.fault_plan,
                resilience=config.resilience,
                compare_no_policy=compare_no_policy,
            )
        return cls(
            workload=WorkloadConfig(
                clients=tuple(config.clients),
                horizon=config.horizon,
                seed=config.seed,
            ),
            servers=(
                ServerSpec(
                    name=server_name,
                    bandwidth_steps=tuple(config.bandwidth_steps),
                    max_queue_depth=config.max_queue_depth,
                    nominal_burst=config.nominal_burst,
                    include_cloud=config.include_cloud,
                ),
            ),
            scheme=scheme if scheme is not None else config.schemes[0],
            channel=ChannelConfig(
                ewma_alpha=config.ewma_alpha,
                drift_threshold=config.drift_threshold,
                setup_latency=config.setup_latency,
                header_bytes=config.header_bytes,
                protocol_overhead=config.protocol_overhead,
            ),
            faults=faults,
            # legacy traces carry no server names or fleet markers
            observability=ObservabilityConfig(
                per_server_lanes=False, fleet_events=False
            ),
        )


def default_fleet(
    servers: int = 4,
    clients: int = 32,
    rate: float = 3.0,
    horizon: float = 12.0,
    model: str = "alexnet",
    mbps: float = 8.0,
    deadline: float | None = 1.0,
    seed: int = DEFAULT_SEED,
    placement: str = "least_loaded",
    scheme: str = "JPS",
    max_queue_depth: int = 64,
    speedups: tuple[float, ...] | None = None,
) -> SystemConfig:
    """A homogeneous N-server fleet under a Poisson client swarm.

    ``speedups`` (cycled over servers) makes the fleet heterogeneous:
    server ``i`` runs its mobile stage ``speedups[i % len]`` times the
    calibrated profile's speed.
    """
    require_positive(servers, "servers")
    require_positive(clients, "clients")
    return SystemConfig(
        workload=WorkloadConfig(
            clients=tuple(
                ClientSpec(
                    name=f"client{i}",
                    model=model,
                    process="poisson",
                    rate=rate,
                    deadline=deadline,
                )
                for i in range(clients)
            ),
            horizon=horizon,
            seed=seed,
        ),
        servers=tuple(
            ServerSpec(
                name=f"server{i}",
                bandwidth_steps=((0.0, mbps),),
                max_queue_depth=max_queue_depth,
                mobile_speedup=(
                    1.0 if speedups is None else speedups[i % len(speedups)]
                ),
            )
            for i in range(servers)
        ),
        scheme=scheme,
        placement=PlacementConfig(policy=placement),
    )


def capacity_scenario(
    servers: int = 4, clients: int = 32, seed: int = DEFAULT_SEED
) -> SystemConfig:
    """The capacity-bound acceptance scenario (ROADMAP "multi-server fleet").

    At 32 deadline-bound clients a single gateway is capacity-bound —
    its one mobile CPU saturates and most requests expire — so an
    N-server fleet on the *identical* arrival stream must serve
    strictly more within deadline. The capacity acceptance test runs
    this config at ``servers=1`` and ``servers=4`` and asserts exactly
    that, plus zero accounting/clock violations.
    """
    return default_fleet(
        servers=servers,
        clients=clients,
        rate=3.0,
        horizon=8.0,
        deadline=1.0,
        seed=seed,
    )


def contended_cloud_scenario(
    servers: int = 4,
    clients: int = 32,
    gpus: int = 1,
    max_batch: int = 8,
    max_wait: float = 0.25,
    policy: str = "batch",
    overhead_fraction: float = 0.9,
    cloud_speedup: float = 0.02,
    rate: float = 3.0,
    horizon: float = 8.0,
    deadline: float = 1.0,
    seed: int = DEFAULT_SEED,
) -> SystemConfig:
    """The shared-cloud acceptance scenario: N gateways, K slow GPUs.

    The 32-client capacity fleet, but the cloud is no longer free: all
    ``servers`` gateways contend for ``gpus`` shared GPUs that execute
    ``1 / cloud_speedup`` times slower than the planner's calibrated
    profile believes (the contention the cost model cannot see), with
    ``overhead_fraction`` of every solo inference being per-batch
    launch cost. Serve-now saturates the GPU on launch overhead;
    hold-and-batch amortizes it across the batch and must serve
    strictly more within deadline on the identical arrival stream —
    the ISSUE 7 acceptance criterion, test-locked in
    ``tests/test_cloud_system.py``.
    """
    base = default_fleet(
        servers=servers,
        clients=clients,
        rate=rate,
        horizon=horizon,
        deadline=deadline,
        seed=seed,
    )
    return replace(
        base,
        cloud=CloudConfig(
            gpus=gpus,
            max_batch=max_batch,
            max_wait=max_wait,
            policy=policy,
            model=CloudGpuModel(
                name="contended-gpu",
                overhead_fraction=overhead_fraction,
                speedup=cloud_speedup,
            ),
        ),
    )


def blackout_fleet_scenario(
    clients: int = 3,
    rate: float = 2.5,
    horizon: float = 20.0,
    model: str = "alexnet",
    seed: int = DEFAULT_SEED,
    blackout_start: float = 8.0,
    blackout_duration: float = 2.0,
    deadline: float = 1.0,
    mbps: float = 8.0,
) -> SystemConfig:
    """The PR 5 blackout-degrade-recover scenario as a ``SystemConfig``.

    Same plan/policy numbers as
    :func:`repro.faults.scenario.default_fault_scenario` (one uplink
    blacking out for ``blackout_duration`` seconds, detection tuned to
    two quarter-second timeouts) but built directly on the fleet
    surface so SLO telemetry can observe it: during the blackout the
    deadline-hit-rate burn spikes and the SLO alert must fire, then
    clear once the probe finds the recovered channel.
    """
    plan = FaultPlan(
        seed=seed,
        blackouts=(Blackout(blackout_start, blackout_start + blackout_duration),),
        metadata={"scenario": "blackout-degrade-recover"},
    )
    policy = ResiliencePolicy(
        max_retries=1,
        backoff_base=0.05,
        backoff_factor=2.0,
        transfer_timeout=0.25,
        degrade_after_failures=2,
        local_fallback=True,
        probe_interval=0.25,
        probe_bytes=16 * 1024.0,
    )
    return SystemConfig(
        workload=WorkloadConfig(
            clients=tuple(
                ClientSpec(
                    name=f"client{i}",
                    model=model,
                    process="poisson",
                    rate=rate,
                    deadline=deadline,
                )
                for i in range(clients)
            ),
            horizon=horizon,
            seed=seed,
        ),
        servers=(
            ServerSpec(
                name="server0",
                bandwidth_steps=((0.0, mbps),),
            ),
        ),
        faults=FaultsConfig(plan=plan, resilience=policy),
    )


def steady_fleet_scenario(
    servers: int = 2,
    clients: int = 4,
    rate: float = 1.0,
    horizon: float = 12.0,
    deadline: float = 1.0,
    seed: int = DEFAULT_SEED,
) -> SystemConfig:
    """The fault-free acceptance scenario: a fleet with slack to spare.

    Light Poisson load on a healthy fleet — every request lands well
    inside its deadline, so a correctly calibrated SLO board must fire
    **zero** alerts here (the negative control the slo-smoke CI job
    asserts).
    """
    return default_fleet(
        servers=servers,
        clients=clients,
        rate=rate,
        horizon=horizon,
        deadline=deadline,
        seed=seed,
    )


def with_slo_telemetry(
    config: SystemConfig,
    slos: tuple[SloConfig, ...] | None = None,
    bucket_width: float = 0.25,
) -> SystemConfig:
    """The same run with windowed telemetry + SLO alerting switched on."""
    return replace(
        config,
        observability=replace(
            config.observability,
            telemetry=True,
            telemetry_bucket=bucket_width,
            slos=tuple(slos) if slos is not None else default_slos(),
        ),
    )


#: The objective the acceptance scenarios are test-locked against:
#: ≥60% of requests inside deadline over any 4 s window, with a 2 s fast
#: window so post-recovery churn must *sustain* before an alert clears.
#: Calibrated so the steady fleet never fires, the blackout fires during
#: the outage and clears after recovery, and the contended cloud fires
#: within the first two seconds and stays active to the end.
SCENARIO_SLO = SloConfig(target=0.6, fast_window=2.0)

#: The slo-smoke scenario names (CLI ``repro trace fleet --scenario``).
SLO_SCENARIOS = ("steady", "blackout", "contended")


def slo_acceptance_scenario(name: str) -> SystemConfig:
    """One of the slo-smoke scenarios, telemetry + locked SLO attached.

    The CLI, the CI ``slo-smoke`` job, and the alert acceptance tests
    all build their runs through this single definition, so "the
    blackout scenario fires its expected alerts" means the same thing
    everywhere.
    """
    builders = {
        "steady": steady_fleet_scenario,
        "blackout": blackout_fleet_scenario,
        "contended": contended_cloud_scenario,
    }
    if name not in builders:
        raise ValueError(f"unknown SLO scenario {name!r} (use {SLO_SCENARIOS})")
    return with_slo_telemetry(builders[name](), slos=(SCENARIO_SLO,))
