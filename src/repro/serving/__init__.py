"""Offload gateway: multi-client serving with adaptive re-planning.

The serving layer composes pieces that already existed in isolation —
the memoized :class:`~repro.engine.PlanningEngine`, the Johnson-order
online policy (:mod:`repro.extensions.online`), the discrete-event
pipeline (:mod:`repro.sim`), and time-varying bandwidth traces
(:mod:`repro.net.timeline`) — into a continuously running service:
streams of requests from simulated mobile clients are admitted, planned,
executed on the mobile-CPU/uplink/cloud chain, and measured.

Modules: :mod:`~repro.serving.workload` (clients + arrival processes),
:mod:`~repro.serving.gateway` (admission, dispatch, re-planning),
:mod:`~repro.serving.estimator` (EWMA channel tracking + drift),
:mod:`~repro.serving.scenario` (end-to-end runs + the JSON report).
Metrics live in :mod:`repro.obs.metrics`; multi-server serving in
:mod:`repro.fleet`. See ``docs/serving.md``.
"""

from repro.obs.metrics import Counter, MetricsRegistry, StreamingHistogram
from repro.serving.estimator import AdaptiveChannelEstimator
from repro.serving.gateway import GATEWAY_SCHEMES, Gateway, GatewayResult, ServedRecord
from repro.serving.scenario import ScenarioConfig, default_scenario, run_scenario
from repro.serving.workload import (
    ClientSpec,
    Request,
    burst_arrivals,
    generate_requests,
    poisson_arrivals,
)

__all__ = [
    "AdaptiveChannelEstimator",
    "GATEWAY_SCHEMES",
    "Gateway",
    "GatewayResult",
    "ServedRecord",
    "Counter",
    "MetricsRegistry",
    "StreamingHistogram",
    "ScenarioConfig",
    "default_scenario",
    "run_scenario",
    "ClientSpec",
    "Request",
    "burst_arrivals",
    "generate_requests",
    "poisson_arrivals",
]
