"""End-to-end serving scenarios: workload + timeline + gateway + report.

A :class:`ScenarioConfig` is a fully deterministic description of one
serving run — clients, horizon, the ground-truth bandwidth trace, the
schemes to compare, and the seed. :func:`run_scenario` generates the
request stream once and serves the *identical* stream under every
scheme through one shared :class:`~repro.engine.PlanningEngine` (so
re-plans and cross-scheme planning hit warm structure caches), then
assembles the JSON metrics report that ``repro serve`` writes and CI
uploads as an artifact.

:func:`default_scenario` is the acceptance scenario from the PR issue:
three Poisson clients over a trace with a mid-run rate drop, sized so
the drop drives at least one adaptive re-plan and the JPS gateway's
tail latency beats the all-mobile and all-cloud baselines.

Since the fleet PR, :func:`run_scenario` is a deprecated wrapper: it
builds a single-server :class:`repro.fleet.SystemConfig` per scheme and
delegates to :func:`repro.fleet.run_system`, reassembling the report in
the historical shape (locked byte-identical by
``tests/data/golden_system_compat.json``). New code should call
``run_system`` directly.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro.core.plans import json_safe
from repro.engine import PlanningEngine
from repro.faults.plan import FaultPlan
from repro.faults.policy import ResiliencePolicy
from repro.net.channel import DEFAULT_HEADER_BYTES, DEFAULT_SETUP_LATENCY
from repro.net.timeline import BandwidthTimeline
from repro.obs.tracer import NullTracer, Tracer
from repro.serving.gateway import GATEWAY_SCHEMES
from repro.serving.workload import ClientSpec
from repro.utils.rng import DEFAULT_SEED
from repro.utils.validation import require_positive

__all__ = ["ScenarioConfig", "default_scenario", "run_scenario"]


@dataclass(frozen=True)
class ScenarioConfig:
    """One reproducible serving run (see module docstring)."""

    clients: tuple[ClientSpec, ...]
    bandwidth_steps: tuple[tuple[float, float], ...]   # (start_s, rate_mbps)
    horizon: float = 60.0
    schemes: tuple[str, ...] = ("JPS", "LO", "CO")
    seed: int = DEFAULT_SEED
    max_queue_depth: int = 64
    nominal_burst: int = 8
    include_cloud: bool = True
    ewma_alpha: float = 0.3
    drift_threshold: float = 0.25
    setup_latency: float = DEFAULT_SETUP_LATENCY
    header_bytes: float = DEFAULT_HEADER_BYTES
    protocol_overhead: float = 1.05
    # opt-in fault injection + resilience (see docs/robustness.md); when
    # both are None the scenario report is byte-identical to pre-fault runs
    fault_plan: FaultPlan | None = None
    resilience: ResiliencePolicy | None = None

    def __post_init__(self) -> None:
        if not self.clients:
            raise ValueError("need at least one client")
        if not self.bandwidth_steps:
            raise ValueError("need at least one bandwidth step")
        require_positive(self.horizon, "horizon")
        unknown = [s for s in self.schemes if s not in GATEWAY_SCHEMES]
        if unknown:
            raise ValueError(f"unknown schemes {unknown} (use {GATEWAY_SCHEMES})")

    def timeline(self) -> BandwidthTimeline:
        """Ground-truth uplink, with the fault plan's windows overlaid."""
        base = BandwidthTimeline.steps_mbps(
            list(self.bandwidth_steps),
            setup_latency=self.setup_latency,
            header_bytes=self.header_bytes,
            protocol_overhead=self.protocol_overhead,
        )
        if self.fault_plan is None:
            return base
        return self.fault_plan.apply_to_timeline(base)

    def as_dict(self) -> dict:
        """JSON-safe config echo embedded in every report."""
        return json_safe(
            {
                "clients": [
                    {
                        "name": c.name,
                        "model": c.model,
                        "process": c.process,
                        "rate": c.rate,
                        "burst_size": c.burst_size,
                        "period": c.period,
                        "deadline": c.deadline,
                    }
                    for c in self.clients
                ],
                "bandwidth_steps": [list(s) for s in self.bandwidth_steps],
                "horizon": self.horizon,
                "schemes": list(self.schemes),
                "seed": self.seed,
                "max_queue_depth": self.max_queue_depth,
                "nominal_burst": self.nominal_burst,
                "include_cloud": self.include_cloud,
                "ewma_alpha": self.ewma_alpha,
                "drift_threshold": self.drift_threshold,
                # present only when set, so fault-free echoes don't change
                **(
                    {"fault_plan": self.fault_plan.as_dict()}
                    if self.fault_plan is not None
                    else {}
                ),
                **(
                    {"resilience": self.resilience.as_dict()}
                    if self.resilience is not None
                    else {}
                ),
            }
        )


def default_scenario(
    clients: int = 3,
    rate: float = 2.0,
    horizon: float = 60.0,
    model: str = "alexnet",
    seed: int = DEFAULT_SEED,
    drop_at: float | None = None,
    mbps_before: float = 8.0,
    mbps_after: float = 4.0,
    deadline: float | None = None,
    schemes: tuple[str, ...] = ("JPS", "LO", "CO"),
) -> ScenarioConfig:
    """The issue's acceptance scenario, parameterized.

    ``clients`` Poisson streams of ``rate`` req/s each over an uplink
    that starts at ``mbps_before`` and drops to ``mbps_after`` at
    ``drop_at`` (default: mid-horizon) — enough drift to force the JPS
    gateway through at least one re-plan.
    """
    require_positive(clients, "clients")
    when = horizon / 2 if drop_at is None else drop_at
    return ScenarioConfig(
        clients=tuple(
            ClientSpec(
                name=f"client{i}",
                model=model,
                process="poisson",
                rate=rate,
                deadline=deadline,
            )
            for i in range(clients)
        ),
        bandwidth_steps=((0.0, mbps_before), (when, mbps_after)),
        horizon=horizon,
        schemes=schemes,
        seed=seed,
    )


def run_scenario(
    config: ScenarioConfig,
    planner: PlanningEngine | None = None,
    tracer: "Tracer | None" = None,
) -> dict:
    """Serve the scenario under every scheme; returns the full report.

    .. deprecated::
        ``run_scenario`` is a thin wrapper over the unified entry point:
        build a :class:`repro.fleet.SystemConfig` (see
        :meth:`~repro.fleet.SystemConfig.from_scenario`) and call
        :func:`repro.fleet.run_system`. The wrapper's report is locked
        byte-identical to the pre-fleet implementation
        (``tests/data/golden_system_compat.json``).

    Pass a :class:`~repro.obs.tracer.Tracer` to collect request
    lifecycle spans and re-plan instant events across every scheme's
    gateway (each scheme wrapped in a ``scenario/scheme`` span); the
    shared ``planner`` inherits the same tracer for the run, so plan
    and table-build spans land in the same trace.
    """
    warnings.warn(
        "run_scenario is deprecated: build a repro.fleet.SystemConfig "
        "(SystemConfig.from_scenario) and call repro.fleet.run_system",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.fleet import SystemConfig, run_system

    planner = planner or PlanningEngine()
    obs = tracer or NullTracer()
    previous_planner_tracer = planner.tracer
    planner.tracer = obs
    reports: dict[str, dict] = {}
    arrivals = 0
    try:
        for scheme in config.schemes:
            system = SystemConfig.from_scenario(config, scheme=scheme)
            with obs.span("scenario/scheme", lane=("scenario", scheme), scheme=scheme):
                outcome = run_system(system, planner=planner, tracer=obs)
            reports[scheme] = outcome.servers["gateway"]["report"]
            arrivals = outcome.arrivals
    finally:
        planner.tracer = previous_planner_tracer
    return json_safe(
        {
            "config": config.as_dict(),
            "arrivals": arrivals,
            "offered_load_rps": arrivals / config.horizon,
            "schemes": reports,
        }
    )
