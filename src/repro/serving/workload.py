"""Serving workloads: multi-client request streams over the model zoo.

The paper's §3.1 batch (``n`` jobs at time 0) is one degenerate arrival
process. A serving gateway instead sees many clients, each emitting an
open stream — here Poisson (independent frames, mean rate λ) or bursts
(multi-camera trigger groups every ``period`` seconds). Generators are
driven by :func:`repro.utils.rng.make_rng` and per-client spawned
streams, so a scenario is bit-reproducible under its seed and adding a
client never perturbs the others' arrivals.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import make_rng, spawn
from repro.utils.validation import require_non_negative, require_positive

__all__ = [
    "Request",
    "ClientSpec",
    "poisson_arrivals",
    "burst_arrivals",
    "generate_requests",
]


@dataclass(frozen=True)
class Request:
    """One inference request of one client.

    ``deadline`` is relative to ``arrival``; ``None`` means the client
    waits forever.
    """

    client_id: str
    request_id: int
    model: str
    arrival: float
    deadline: float | None = None

    def __post_init__(self) -> None:
        require_non_negative(self.arrival, "arrival")
        if self.deadline is not None:
            require_positive(self.deadline, "deadline")

    @property
    def expiry(self) -> float:
        """Absolute time after which serving this request is pointless."""
        return float("inf") if self.deadline is None else self.arrival + self.deadline


@dataclass(frozen=True)
class ClientSpec:
    """One simulated mobile client and its arrival process.

    ``process`` is ``"poisson"`` (``rate`` requests/s) or ``"burst"``
    (``burst_size`` back-to-back requests every ``period`` seconds,
    first burst at a uniform random offset within one period).
    """

    name: str
    model: str = "alexnet"
    process: str = "poisson"
    rate: float = 1.0
    burst_size: int = 4
    period: float = 4.0
    deadline: float | None = None

    def __post_init__(self) -> None:
        if self.process not in ("poisson", "burst"):
            raise ValueError(f"unknown arrival process {self.process!r}")
        require_positive(self.rate, "rate")
        require_positive(self.burst_size, "burst_size")
        require_positive(self.period, "period")
        if self.deadline is not None:
            require_positive(self.deadline, "deadline")

    def arrivals(self, horizon: float, rng: np.random.Generator) -> list[float]:
        if self.process == "poisson":
            return poisson_arrivals(self.rate, horizon, rng)
        return burst_arrivals(self.burst_size, self.period, horizon, rng)


def poisson_arrivals(
    rate: float, horizon: float, rng: np.random.Generator | int | None = None
) -> list[float]:
    """Arrival times of a Poisson process of ``rate`` req/s on [0, horizon)."""
    require_positive(rate, "rate")
    require_positive(horizon, "horizon")
    generator = make_rng(rng)
    times: list[float] = []
    t = generator.exponential(1.0 / rate)
    while t < horizon:
        times.append(t)
        t += generator.exponential(1.0 / rate)
    return times


def burst_arrivals(
    burst_size: int,
    period: float,
    horizon: float,
    rng: np.random.Generator | int | None = None,
    spacing: float = 1e-3,
) -> list[float]:
    """Bursts of ``burst_size`` requests ``spacing`` apart every ``period``.

    The first burst starts at a uniform random phase in [0, period) so
    clients sharing a period don't all fire at the same instant.
    """
    require_positive(burst_size, "burst_size")
    require_positive(period, "period")
    require_positive(horizon, "horizon")
    require_non_negative(spacing, "spacing")
    generator = make_rng(rng)
    times: list[float] = []
    start = generator.uniform(0.0, period)
    while start < horizon:
        times.extend(
            start + i * spacing
            for i in range(burst_size)
            if start + i * spacing < horizon
        )
        start += period
    return times


def generate_requests(
    clients: list[ClientSpec],
    horizon: float,
    seed: int | np.random.Generator | None = None,
) -> list[Request]:
    """All clients' requests merged in arrival order, ids globally unique.

    Ties (identical arrival instants) break by client order so the
    merged stream — and everything downstream of it — is deterministic.
    """
    if not clients:
        raise ValueError("need at least one client")
    names = [c.name for c in clients]
    if len(set(names)) != len(names):
        raise ValueError(f"client names must be unique, got {names}")
    streams = spawn(make_rng(seed), len(clients))
    tagged: list[tuple[float, int, ClientSpec]] = []
    for order, (client, rng) in enumerate(zip(clients, streams)):
        tagged.extend((t, order, client) for t in client.arrivals(horizon, rng))
    tagged.sort(key=lambda item: (item[0], item[1]))
    return [
        Request(
            client_id=client.name,
            request_id=index,
            model=client.model,
            arrival=arrival,
            deadline=client.deadline,
        )
        for index, (arrival, _, client) in enumerate(tagged)
    ]
