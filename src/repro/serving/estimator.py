"""Adaptive channel estimation: EWMA rate tracking + drift detection.

The gateway plans against a rate it believes; the wireless truth is a
:class:`~repro.net.timeline.BandwidthTimeline` it never reads directly.
Every completed upload is one noisy rate sample (wire bits over airtime,
setup latency backed out); an exponentially weighted moving average
smooths the samples, and when the smoothed estimate drifts beyond a
relative threshold from the rate the current plan was priced at, the
estimator reports drift. The gateway then re-plans through the
:class:`~repro.engine.PlanningEngine` — whose bandwidth-independent
structure caches make the new cost table a cheap priced-table miss —
and ``rebase()`` marks the new planning rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.bandwidth import TrafficShaper
from repro.net.channel import Channel
from repro.utils.units import BITS_PER_BYTE
from repro.utils.validation import require_non_negative, require_positive

__all__ = ["AdaptiveChannelEstimator"]


@dataclass
class AdaptiveChannelEstimator:
    """EWMA uplink-rate tracker with relative drift detection.

    ``alpha`` is the EWMA weight of the newest sample;
    ``drift_threshold`` the relative deviation |est - planned| / planned
    that flags a re-plan; ``min_observations`` suppresses drift until
    enough samples arrived to trust the average. The framing constants
    (``setup_latency``, ``header_bytes``, ``protocol_overhead``) must
    match the link being observed so samples recover the raw rate.
    """

    initial_bps: float
    alpha: float = 0.3
    drift_threshold: float = 0.25
    min_observations: int = 3
    setup_latency: float = 0.0
    header_bytes: float = 0.0
    protocol_overhead: float = 1.0
    observations: int = field(default=0, init=False)
    estimate_bps: float = field(init=False)
    planned_bps: float = field(init=False)

    def __post_init__(self) -> None:
        require_positive(self.initial_bps, "initial_bps")
        if not 0 < self.alpha <= 1:
            raise ValueError(f"alpha must be in (0, 1], got {self.alpha}")
        require_positive(self.drift_threshold, "drift_threshold")
        require_positive(self.min_observations, "min_observations")
        require_non_negative(self.setup_latency, "setup_latency")
        require_non_negative(self.header_bytes, "header_bytes")
        require_positive(self.protocol_overhead, "protocol_overhead")
        self.estimate_bps = self.initial_bps
        self.planned_bps = self.initial_bps

    def observe(self, payload_bytes: float, duration: float) -> float:
        """Fold one completed transfer in; returns the sample's rate."""
        require_positive(payload_bytes, "payload_bytes")
        require_positive(duration, "duration")
        wire_bits = (
            (payload_bytes + self.header_bytes)
            * self.protocol_overhead
            * BITS_PER_BYTE
        )
        airtime = duration - self.setup_latency
        if airtime <= 0:
            raise ValueError(
                f"duration {duration} does not cover setup latency {self.setup_latency}"
            )
        sample_bps = wire_bits / airtime
        self.estimate_bps = (
            self.alpha * sample_bps + (1 - self.alpha) * self.estimate_bps
        )
        self.observations += 1
        return sample_bps

    @property
    def drift(self) -> float:
        """Relative deviation of the estimate from the planning rate."""
        return abs(self.estimate_bps - self.planned_bps) / self.planned_bps

    def drifted(self) -> bool:
        """True when the link moved enough that the plan is stale."""
        return (
            self.observations >= self.min_observations
            and self.drift > self.drift_threshold
        )

    def rebase(self) -> float:
        """Adopt the current estimate as the new planning rate."""
        self.planned_bps = self.estimate_bps
        return self.planned_bps

    def channel(self) -> Channel:
        """A planning channel priced at the current estimate.

        Framing constants mirror the observed link, so cost tables built
        from this channel price ``g`` the way the link actually charges.
        """
        return Channel(
            shaper=TrafficShaper(
                uplink_bps=self.estimate_bps, downlink_bps=2 * self.estimate_bps
            ),
            setup_latency=self.setup_latency,
            header_bytes=self.header_bytes,
            protocol_overhead=self.protocol_overhead,
        )
