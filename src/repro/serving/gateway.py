"""The offload gateway: multi-client serving on the event engine.

This is the continuously-running counterpart of the paper's one-shot
batch: clients stream inference requests into per-client FIFO queues;
the gateway admits (bounded queue depth, optional deadlines), assigns
each admitted request a partition from the current plan, and drives the
mobile-CPU → uplink → cloud-GPU chain on the discrete-event engine
(:mod:`repro.sim.engine`). Scheduling is the Johnson-order online
policy of :mod:`repro.extensions.online`: whenever the mobile stage
idles, the Johnson-preferred request among the queue heads runs next.

Partitions adapt: an :class:`~repro.serving.estimator.AdaptiveChannelEstimator`
folds every observed upload into an EWMA rate; on drift past its
threshold the gateway re-prices cost tables through the shared
:class:`~repro.engine.PlanningEngine` (a warm structure cache makes
this a per-rate table build, not a re-enumeration) and subsequent
admissions draw cuts from the new mix. Everything observable lands in a
:class:`~repro.obs.metrics.MetricsRegistry` whose snapshot is the
gateway's JSON report.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.core.baselines import single_job_optimal_cut
from repro.core.plans import JobPlan
from repro.engine import PlanningEngine
from repro.extensions.online import OnlineJpsScheduler
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.faults.policy import ResiliencePolicy
from repro.net.timeline import BandwidthTimeline
from repro.obs.slo import NULL_BOARD
from repro.obs.timeseries import NULL_HUB
from repro.obs.tracer import NullTracer, Tracer
from repro.profiling.latency import CostTable
from repro.serving.estimator import AdaptiveChannelEstimator
from repro.obs.metrics import MetricsRegistry
from repro.serving.workload import Request
from repro.sim.engine import Engine, Resource
from repro.sim.fast import FastEngine, FastResource
from repro.utils.validation import require_positive

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.cloud.server import BatchingServer

__all__ = ["Gateway", "GatewayResult", "ServedRecord", "GATEWAY_SCHEMES"]

#: Schemes the gateway can serve under. ``JPS`` adapts its cut mix on
#: re-plans; the baselines' cut choices are bandwidth-invariant.
GATEWAY_SCHEMES = ("JPS", "LO", "CO", "PO")

#: Attempts per transfer the bare (no-policy) gateway retransmits a
#: corrupted payload before the link layer gives up and the request is
#: dropped — a safety valve, not a policy (with corruption probability
#: p the chance of hitting it is p**100).
MAX_BARE_RETRANSMITS = 100


@dataclass
class _ModelState:
    """Per-model planning state, rebuilt on every re-plan."""

    table: CostTable
    payloads: tuple[float, ...]       # upload bytes per cut position
    mix: tuple[int, ...]              # JPS round-robin cut sequence
    assigned: int = 0                 # monotone round-robin pointer


@dataclass
class _Ticket:
    """One admitted request moving through the pipeline."""

    request: Request
    plan: JobPlan
    payload_bytes: float
    admitted_at: float
    started: float | None = None
    completed: float | None = None
    # stage windows in virtual time, recorded as tracer spans at finish
    compute_window: tuple[float, float] | None = None
    comm_window: tuple[float, float] | None = None
    cloud_window: tuple[float, float] | None = None
    fallback_window: tuple[float, float] | None = None
    # fault/resilience bookkeeping (inert on the fault-free path)
    attempts: int = 0                 # transfer attempts so far
    timed_out: bool = False           # last attempt hit the per-attempt timeout
    degraded: bool = False            # completed (or will complete) locally
    local_tail: float = 0.0           # mobile time of the layers past the cut
    # which GPU batch served the cloud stage (shared batching cloud only)
    batch_info: dict | None = None


class _HeadIndex:
    """Incremental Johnson/FIFO/expiry index over the queue heads.

    Four lazy-deletion heaps replace the per-event rebuild of the
    ``heads`` list: S1 (communication-heavy heads by ascending ``f``)
    and S2 (computation-heavy by descending ``g``) realize Johnson's
    rule as two peeks, ``fifo`` orders heads by arrival for the
    baselines, and ``expiry`` surfaces the earliest deadline so a burst
    of expiries drains in O(drops · log clients) instead of
    O(drops × clients). Entries are pushed once — when a ticket becomes
    its queue's head — and go stale when it stops being the head; stale
    entries are detected against the live queues on peek and popped
    exactly once, so ties never compare tickets (a sequence number
    breaks them first) and the index never needs rebuilding, not even on
    re-plans (queued tickets keep their admission-time plans).
    """

    def __init__(
        self, queues: dict[str, deque[_Ticket]], client_pos: dict[str, int]
    ) -> None:
        self._queues = queues
        self._client_pos = client_pos
        self._seq = 0
        self._s1: list[tuple[float, int, int, _Ticket]] = []
        self._s2: list[tuple[float, int, int, _Ticket]] = []
        self._fifo: list[tuple[float, int, int, _Ticket]] = []
        self._expiry: list[tuple[float, int, _Ticket]] = []

    def push(self, ticket: _Ticket) -> None:
        """Index a ticket that just became its queue's head."""
        self._seq += 1
        seq = self._seq
        pos = self._client_pos[ticket.request.client_id]
        f, g = ticket.plan.stages
        if f < g:
            heapq.heappush(self._s1, (f, pos, seq, ticket))
        else:
            heapq.heappush(self._s2, (-g, pos, seq, ticket))
        heapq.heappush(
            self._fifo,
            (ticket.request.arrival, ticket.request.request_id, seq, ticket),
        )
        if ticket.request.expiry != float("inf"):
            heapq.heappush(self._expiry, (ticket.request.expiry, seq, ticket))

    def _is_head(self, ticket: _Ticket) -> bool:
        queue = self._queues.get(ticket.request.client_id)
        return bool(queue) and queue[0] is ticket

    def _peek(self, heap: list) -> _Ticket | None:
        while heap and not self._is_head(heap[0][-1]):
            heapq.heappop(heap)
        return heap[0][-1] if heap else None

    def johnson_head(self) -> _Ticket | None:
        """The head Johnson's rule runs next: S1 by (f, client), else S2."""
        head = self._peek(self._s1)
        return head if head is not None else self._peek(self._s2)

    def fifo_head(self) -> _Ticket | None:
        return self._peek(self._fifo)

    def expired_head(self, now: float) -> _Ticket | None:
        """The earliest-deadline head, if it has already expired."""
        head = self._peek(self._expiry)
        if head is not None and head.request.expiry < now:
            return head
        return None


@dataclass(frozen=True)
class ServedRecord:
    """Terminal outcome of one request (served, degraded, or dropped)."""

    request_id: int
    client_id: str
    # "served" | "degraded" | "rejected" | "expired" | "failed"
    outcome: str
    latency: float | None             # completion - arrival, completed only


@dataclass
class GatewayResult:
    """What one gateway run produced."""

    scheme: str
    makespan: float
    records: list[ServedRecord]
    metrics: MetricsRegistry
    replan_events: list[dict]
    mobile: Resource | FastResource
    uplink: Resource | FastResource
    cloud: Resource | FastResource
    pending: int                      # admitted but unfinished (truncated runs)


class Gateway:
    """Admission + adaptive dispatch over one simulated device fleet.

    ``timeline`` is the ground-truth uplink; the gateway never reads it
    directly — transfers are priced by the event engine at grant time
    and observed through the estimator. ``planner`` is shared across
    schemes/runs on purpose: the bandwidth-independent structure caches
    are what make adaptive re-planning affordable.
    """

    def __init__(
        self,
        timeline: BandwidthTimeline,
        planner: PlanningEngine | None = None,
        scheme: str = "JPS",
        estimator: AdaptiveChannelEstimator | None = None,
        initial_bps: float | None = None,
        max_queue_depth: int = 64,
        nominal_burst: int = 8,
        include_cloud: bool = True,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | NullTracer | None = None,
        resilience: ResiliencePolicy | None = None,
        faults: FaultInjector | FaultPlan | None = None,
        engine: Engine | FastEngine | None = None,
        name: str | None = None,
        cloud_server: "BatchingServer | None" = None,
        telemetry=None,
        slo=None,
    ) -> None:
        if scheme not in GATEWAY_SCHEMES:
            raise ValueError(f"unknown scheme {scheme!r} (use one of {GATEWAY_SCHEMES})")
        require_positive(max_queue_depth, "max_queue_depth")
        require_positive(nominal_burst, "nominal_burst")
        self.timeline = timeline
        self.planner = planner or PlanningEngine()
        self.scheme = scheme
        self.estimator = estimator or AdaptiveChannelEstimator(
            initial_bps=initial_bps or timeline.rates_bps[0],
            setup_latency=timeline.setup_latency,
            header_bytes=timeline.header_bytes,
            protocol_overhead=timeline.protocol_overhead,
        )
        self.max_queue_depth = max_queue_depth
        self.nominal_burst = nominal_burst
        self.include_cloud = include_cloud
        self.metrics = metrics or MetricsRegistry()
        self.tracer = tracer or NullTracer()
        self.replan_events: list[dict] = []
        self._models: dict[str, _ModelState] = {}
        self._queues: dict[str, deque[_Ticket]] = {}
        self._client_order: list[str] = []
        self._client_pos: dict[str, int] = {}
        self._index = _HeadIndex(self._queues, self._client_pos)
        self._records: list[ServedRecord] = []
        # a fleet passes a shared engine (one virtual clock across all
        # servers) and a name (per-server trace lanes); standalone
        # gateways own their engine and keep the historical lane names
        self.name = name
        self._events_lane = ("gateway", "events") if name is None else (name, "events")
        self._lane_prefix = "" if name is None else f"{name}/"
        # windowed telemetry + SLO feed — both strictly opt-in; the null
        # twins keep every publish site one attribute check when disabled
        self.telemetry = telemetry if telemetry is not None else NULL_HUB
        self.slo = slo if slo is not None else NULL_BOARD
        self._obs_name = name or "gateway"
        # fleet placement context, keyed by request id, consumed into the
        # request's trace tree at finish (see note_placement)
        self._placements: dict[int, dict] = {}
        # the engine seam: standalone gateways default to the SoA core
        # (byte-identical event order, see repro.sim.fast); a fleet (or
        # a parity test) passes a shared engine of either core, and the
        # resources come from the engine's own factory
        self._engine = engine if engine is not None else FastEngine()
        self._mobile = self._engine.resource("mobile-cpu")
        self._uplink = self._engine.resource("uplink")
        self._cloud = self._engine.resource("cloud-gpu")
        # opt-in shared batching cloud (repro.cloud): when set, the cloud
        # stage routes through the hold-and-batch server instead of the
        # gateway's private GPU — strictly opt-in, like faults/resilience
        self._cloud_server = cloud_server
        self._cpu_claimed = False
        self._inflight = 0
        self._queued = 0
        # resilience + fault injection (both strictly opt-in: leaving them
        # None keeps this gateway byte-identical to the policy-free path)
        self.resilience = resilience
        self.faults = faults.injector() if isinstance(faults, FaultPlan) else faults
        self._degraded = False
        self._consecutive_failures = 0
        self._probe_pending = False
        self._probe_timed_out = False

    @property
    def engine(self) -> Engine:
        """The underlying event engine (read-only; invariant monitors
        attach their clock observers here)."""
        return self._engine

    @property
    def degraded_mode(self) -> bool:
        """True while the gateway is serving local-only after a blackout."""
        return self._degraded

    @property
    def outstanding(self) -> int:
        """Admitted-but-unfinished work (queued + in flight).

        This is the load signal fleet placement policies balance on;
        reading it never mutates dispatch state. Maintained as O(1)
        counters — placement polls this per arrival, and a rescan of
        every client queue is what capped fleet sweeps at hundreds of
        clients.
        """
        return self._queued + self._inflight

    # ------------------------------------------------------------------
    # windowed telemetry + request correlation
    # ------------------------------------------------------------------
    def note_placement(self, request_id: int, **info) -> None:
        """Attach fleet placement context to a request's trace tree.

        The fleet calls this at placement time; the info becomes a
        ``placement`` child span of the request's lifecycle parent when
        the request finishes (see :meth:`_record_spans`).
        """
        self._placements[request_id] = info

    def _publish_drop(self, reason: str) -> None:
        """One dropped request: windowed counter + bad SLO outcome."""
        now = self._engine.now
        if self.telemetry.enabled:
            self.telemetry.record(
                "dropped", now, server=self._obs_name, reason=reason
            )
        if self.slo.enabled:
            self.slo.outcome(now, False)

    # ------------------------------------------------------------------
    # planning state
    # ------------------------------------------------------------------
    def _build_model_state(self, model: str) -> _ModelState:
        # priced from the engine's bandwidth-independent pricing kernel:
        # a re-plan costs one cached lookup + one g column, not a table build
        priced = self.planner.priced_table(
            model,
            self.estimator.estimate_bps,
            setup_latency=self.estimator.setup_latency,
            header_bytes=self.estimator.header_bytes,
            protocol_overhead=self.estimator.protocol_overhead,
        )
        mix = OnlineJpsScheduler(priced.table, nominal_burst=self.nominal_burst).cut_mix
        return _ModelState(table=priced.table, payloads=priced.payloads, mix=mix)

    def _state_of(self, model: str) -> _ModelState:
        if model not in self._models:
            self._models[model] = self._build_model_state(model)
        return self._models[model]

    def _next_position(self, state: _ModelState) -> int:
        if self._degraded:
            # degraded mode: everything runs on the device until a
            # recovery probe brings the uplink back
            return state.table.k - 1
        if self.scheme == "LO":
            return state.table.k - 1
        if self.scheme == "CO":
            return 0
        if self.scheme == "PO":
            return single_job_optimal_cut(state.table)
        position = state.mix[state.assigned % len(state.mix)]
        state.assigned += 1
        return position

    @property
    def _fault_aware(self) -> bool:
        """True when any opt-in fault machinery is installed.

        Gates every new report/event field: a gateway constructed
        without faults or a policy emits byte-identical output to the
        pre-fault code, replan events included.
        """
        return self.resilience is not None or self.faults is not None

    def _rebuild_plans(self) -> None:
        carried = {model: state.assigned for model, state in self._models.items()}
        self._models = {model: self._build_model_state(model) for model in self._models}
        for model, assigned in carried.items():
            self._models[model].assigned = assigned

    def _replan(self, kind: str = "drift") -> None:
        old_bps = self.estimator.planned_bps
        drift = self.estimator.drift
        new_bps = self.estimator.rebase()
        self._rebuild_plans()
        self.metrics.counter("replans").increment()
        if self.telemetry.enabled:
            self.telemetry.record(
                "replans", self._engine.now, server=self._obs_name, kind=kind
            )
        tagged = {"kind": kind} if self._fault_aware else {}
        self.tracer.instant(
            "gateway/replan",
            timestamp=self._engine.now,
            lane=self._events_lane,
            old_bps=old_bps,
            new_bps=new_bps,
            drift=drift,
            **tagged,
        )
        self.replan_events.append(
            {
                "time": self._engine.now,
                "old_bps": old_bps,
                "new_bps": new_bps,
                "drift": drift,
                **tagged,
            }
        )

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def submit(self, request: Request) -> None:
        """Admit (or reject) one request at the current simulation time."""
        self.metrics.counter("arrived").increment()
        if self.telemetry.enabled:
            self.telemetry.record(
                "arrivals", self._engine.now, server=self._obs_name
            )
        if self.faults is not None and self.faults.disconnected(
            request.client_id, self._engine.now
        ):
            # the client's link to the gateway is down: the request never
            # reaches admission (it is not queued, so it cannot expire)
            self.metrics.counter("dropped").increment()
            self.metrics.counter("dropped_disconnected").increment()
            self.tracer.instant(
                "gateway/drop",
                timestamp=self._engine.now,
                lane=self._events_lane,
                request_id=request.request_id,
                client=request.client_id,
                reason="disconnected",
            )
            self._records.append(
                ServedRecord(request.request_id, request.client_id, "failed", None)
            )
            self._publish_drop("disconnected")
            return
        if request.client_id not in self._queues:
            self._queues[request.client_id] = deque()
            self._client_pos[request.client_id] = len(self._client_order)
            self._client_order.append(request.client_id)
        queue = self._queues[request.client_id]
        if len(queue) >= self.max_queue_depth:
            self.metrics.counter("dropped").increment()
            self.metrics.counter("dropped_queue_full").increment()
            self.tracer.instant(
                "gateway/drop",
                timestamp=self._engine.now,
                lane=self._events_lane,
                request_id=request.request_id,
                client=request.client_id,
                reason="queue_full",
            )
            self._records.append(
                ServedRecord(request.request_id, request.client_id, "rejected", None)
            )
            self._publish_drop("queue_full")
            return
        state = self._state_of(request.model)
        position = self._next_position(state)
        f, g = state.table.stage_lengths(position)
        plan = JobPlan(
            job_id=request.request_id,
            model=request.model,
            cut_position=position,
            compute_time=f,
            comm_time=g,
            cloud_time=state.table.cloud_rest(position),
            cut_label=state.table.positions[position],
        )
        ticket = _Ticket(
            request=request,
            plan=plan,
            payload_bytes=state.payloads[position],
            admitted_at=self._engine.now,
            # mobile time of the layers past the cut — what a local
            # fallback must still execute after the transfer is abandoned
            local_tail=max(0.0, state.table.local_only_time - f),
            degraded=self._degraded,
        )
        queue.append(ticket)
        self._queued += 1
        if len(queue) == 1:
            self._index.push(ticket)
        self.metrics.counter("admitted").increment()
        self.metrics.histogram("queue_depth").observe(len(queue))
        if self.telemetry.enabled:
            self.telemetry.sample(
                "queue_depth",
                self._engine.now,
                self.outstanding,
                server=self._obs_name,
            )
        if self._degraded:
            # new work while degraded: make sure recovery probing runs
            self._schedule_probe()
        self._dispatch()

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _pop_head(self, ticket: _Ticket) -> None:
        """Remove a head from its queue and index the promoted successor."""
        queue = self._queues[ticket.request.client_id]
        queue.popleft()
        self._queued -= 1
        if queue:
            self._index.push(queue[0])

    def _dispatch(self) -> None:
        if self._cpu_claimed:
            return
        now = self._engine.now
        # drain every expired head (including heads promoted by a drop)
        # straight off the expiry heap: O(log clients) per drop, however
        # many clients are idle
        while True:
            expired = self._index.expired_head(now)
            if expired is None:
                break
            self._pop_head(expired)
            self.metrics.counter("dropped").increment()
            self.metrics.counter("dropped_deadline").increment()
            self.tracer.instant(
                "gateway/drop",
                timestamp=now,
                lane=self._events_lane,
                request_id=expired.request.request_id,
                client=expired.request.client_id,
                reason="deadline",
            )
            self._records.append(
                ServedRecord(
                    expired.request.request_id,
                    expired.request.client_id,
                    "expired",
                    None,
                )
            )
            self._publish_drop("deadline")
        ticket = (
            self._index.johnson_head()
            if self.scheme == "JPS"
            else self._index.fifo_head()
        )
        if ticket is None:
            return
        self._pop_head(ticket)
        self._start(ticket)

    def _start(self, ticket: _Ticket) -> None:
        self._cpu_claimed = True
        self._inflight += 1
        ticket.started = self._engine.now
        self.metrics.histogram("queue_wait").observe(
            self._engine.now - ticket.request.arrival
        )
        rid = ticket.request.request_id
        label = f"req{rid}"
        policy = self.resilience
        injector = self.faults
        # executed (not planned) costs: cost-model misestimation makes the
        # run diverge from the plan without the planner knowing
        compute_time = ticket.plan.compute_time
        wire_payload = ticket.payload_bytes
        if injector is not None:
            compute_time = compute_time * injector.compute_factor(rid)
            wire_payload = wire_payload * injector.payload_factor(rid)

        def comm_duration(start: float) -> float:
            actual = self.timeline.transfer_end(start, wire_payload) - start
            if (
                policy is not None
                and policy.transfer_timeout is not None
                and actual > policy.transfer_timeout
            ):
                # abandon the attempt: release the uplink at the timeout
                # instead of holding it for a (possibly unbounded) stall
                ticket.timed_out = True
                return policy.transfer_timeout
            ticket.timed_out = False
            return actual

        def send() -> None:
            self._uplink.acquire(f"{label}/comm", comm_duration, after_comm)

        def after_compute(start: float, end: float) -> None:
            ticket.compute_window = (start, end)
            # the CPU is free the instant the compute stage ends: hand it
            # to the Johnson-next request before this one queues uplink
            self._cpu_claimed = False
            self._dispatch()
            if ticket.payload_bytes > 0:
                send()
            else:
                enter_cloud()

        def after_comm(start: float, end: float) -> None:
            attempt = ticket.attempts
            ticket.attempts += 1
            if ticket.timed_out:
                ticket.timed_out = False
                transfer_failed("timeout")
                return
            if injector is not None and injector.corrupted(rid, attempt, start):
                transfer_failed("corrupt")
                return
            ticket.comm_window = (start, end)
            self._consecutive_failures = 0
            self.estimator.observe(ticket.payload_bytes, end - start)
            if self.scheme == "JPS" and self.estimator.drifted():
                self._replan()
            enter_cloud()

        def transfer_failed(reason: str) -> None:
            self.metrics.counter("transfer_failures").increment()
            self.metrics.counter(
                "transfer_timeouts" if reason == "timeout" else "transfer_corruptions"
            ).increment()
            self._consecutive_failures += 1
            self.tracer.instant(
                "gateway/transfer_failure",
                timestamp=self._engine.now,
                lane=self._events_lane,
                request_id=rid,
                reason=reason,
                attempt=ticket.attempts - 1,
            )
            if policy is None:
                # bare link layer: immediate retransmit until the safety
                # valve trips (models TCP with no application policy)
                if ticket.attempts >= MAX_BARE_RETRANSMITS:
                    fail()
                else:
                    send()
                return
            if (
                not self._degraded
                and self._consecutive_failures >= policy.degrade_after_failures
            ):
                self._enter_degraded()
            if ticket.attempts <= policy.max_retries:
                self.metrics.counter("transfer_retries").increment()
                self._engine.schedule(policy.backoff(ticket.attempts - 1), send)
            elif policy.local_fallback:
                local_fallback()
            else:
                fail()

        def local_fallback() -> None:
            # retries exhausted: run the remaining layers on the device
            # instead of dropping the request
            self.metrics.counter("local_fallbacks").increment()
            ticket.degraded = True
            if ticket.local_tail > 0:
                self._mobile.acquire(f"{label}/fallback", ticket.local_tail, after_fallback)
            else:
                finish()

        def after_fallback(start: float, end: float) -> None:
            ticket.fallback_window = (start, end)
            finish()

        def fail() -> None:
            self._inflight -= 1
            self.metrics.counter("dropped").increment()
            self.metrics.counter("dropped_transfer_failed").increment()
            self.tracer.instant(
                "gateway/drop",
                timestamp=self._engine.now,
                lane=self._events_lane,
                request_id=rid,
                client=ticket.request.client_id,
                reason="transfer_failed",
            )
            self._records.append(
                ServedRecord(rid, ticket.request.client_id, "failed", None)
            )
            self._publish_drop("transfer_failed")

        def enter_cloud() -> None:
            if self.include_cloud and ticket.plan.cloud_time > 0:
                if self._cloud_server is not None:
                    self._cloud_server.submit(
                        f"{label}/cloud",
                        ticket.plan.cloud_time,
                        after_cloud,
                        slack=ticket.request.expiry - self._engine.now,
                    )
                else:
                    self._cloud.acquire(
                        f"{label}/cloud", ticket.plan.cloud_time, after_cloud
                    )
            else:
                finish()

        def after_cloud(start: float, end: float) -> None:
            ticket.cloud_window = (start, end)
            if self._cloud_server is not None:
                # the batch that just completed is still current: link
                # this request to its co-batched peers in the trace tree
                ticket.batch_info = self._cloud_server.current_batch
            finish()

        def finish() -> None:
            ticket.completed = self._engine.now
            self._inflight -= 1
            latency = ticket.completed - ticket.request.arrival
            outcome = "degraded" if ticket.degraded else "served"
            self.metrics.counter(outcome).increment()
            self.metrics.histogram("latency").observe(latency)
            if self.telemetry.enabled:
                now = ticket.completed
                self.telemetry.record(outcome, now, server=self._obs_name)
                self.telemetry.observe(
                    "latency", now, latency, server=self._obs_name
                )
            if self.slo.enabled:
                deadline = ticket.request.deadline
                self.slo.outcome(
                    ticket.completed, deadline is None or latency <= deadline
                )
            self._record_spans(ticket, latency)
            self._records.append(
                ServedRecord(
                    rid,
                    ticket.request.client_id,
                    outcome,
                    latency,
                )
            )

        self._mobile.acquire(f"{label}/compute", compute_time, after_compute)

    def _record_spans(self, ticket: _Ticket, latency: float) -> None:
        """Retro-record one served request's lifecycle as tracer spans.

        Virtual-time stage windows only become known as their DES
        callbacks fire, so the whole family — request parent, queue
        wait, then one span per executed stage — is recorded at finish.
        Each request is its own lane process (``req <id>``) with one
        track per stage, mirroring :func:`repro.sim.trace.pipeline_spans`.
        """
        rid = ticket.request.request_id
        process = f"{self._lane_prefix}req {rid}"
        parent = self.tracer.record(
            f"request {rid}",
            ticket.request.arrival,
            ticket.completed,
            lane=(process, "lifecycle"),
            request_id=rid,
            client=ticket.request.client_id,
            model=ticket.request.model,
            cut=ticket.plan.cut_label or ticket.plan.cut_position,
            latency=latency,
        )
        placement = self._placements.pop(rid, None)
        if placement is not None:
            # the fleet's placement decision, as a zero-width child at
            # admission so the whole hop sequence reads off one tree
            self.tracer.record(
                "placement",
                ticket.admitted_at,
                ticket.admitted_at,
                parent=parent,
                lane=(process, "placement"),
                **placement,
            )
        self.tracer.record(
            "queue", ticket.admitted_at, ticket.started, parent=parent, lane=(process, "queue")
        )
        for stage, resource, window in (
            ("compute", "mobile-cpu", ticket.compute_window),
            ("transfer", "uplink", ticket.comm_window),
            ("cloud", "cloud-gpu", ticket.cloud_window),
            ("fallback", "mobile-cpu", ticket.fallback_window),
        ):
            if window is None:
                continue
            # cloud stages served by a shared batching GPU carry their
            # batch window: which batch, its flush reason, and the
            # co-batched request labels
            extra = (
                ticket.batch_info
                if stage == "cloud" and ticket.batch_info is not None
                else {}
            )
            self.tracer.record(
                stage,
                window[0],
                window[1],
                parent=parent,
                lane=(process, resource),
                resource=resource,
                **extra,
            )

    # ------------------------------------------------------------------
    # degraded mode + recovery probing
    # ------------------------------------------------------------------
    def _has_work(self) -> bool:
        return self._inflight > 0 or any(self._queues.values())

    def _enter_degraded(self) -> None:
        """Stop offloading: serve local-only and start probing the uplink."""
        if self._degraded:
            return
        self._degraded = True
        self.metrics.counter("degradations").increment()
        self.tracer.instant(
            "gateway/degrade",
            timestamp=self._engine.now,
            lane=self._events_lane,
            consecutive_failures=self._consecutive_failures,
        )
        self.replan_events.append(
            {
                "time": self._engine.now,
                "old_bps": self.estimator.planned_bps,
                "new_bps": None,
                "drift": self.estimator.drift,
                "kind": "degrade",
            }
        )
        self._schedule_probe()

    def _recover(self) -> None:
        """A probe returned in time: re-plan at the probed rate and resume."""
        if not self._degraded:
            return
        self._degraded = False
        self._consecutive_failures = 0
        self.metrics.counter("recoveries").increment()
        self.tracer.instant(
            "gateway/recover",
            timestamp=self._engine.now,
            lane=self._events_lane,
            estimate_bps=self.estimator.estimate_bps,
        )
        self._replan(kind="recovery")

    def _schedule_probe(self) -> None:
        """Arm the next recovery probe, if one is due and work remains.

        Probes are only armed while the gateway has pending work: an
        idle degraded gateway stops probing so ``Engine.run`` can drain
        (a later :meth:`submit` re-arms probing).
        """
        if not self._degraded or self._probe_pending or self.resilience is None:
            return
        if not self._has_work():
            return
        self._probe_pending = True
        self._engine.schedule(self.resilience.probe_interval, self._launch_probe)

    def _launch_probe(self) -> None:
        policy = self.resilience
        if not self._degraded or policy is None:
            self._probe_pending = False
            return
        timeout = policy.effective_probe_timeout

        def probe_duration(start: float) -> float:
            actual = self.timeline.transfer_end(start, policy.probe_bytes) - start
            if timeout is not None and actual > timeout:
                self._probe_timed_out = True
                return timeout
            self._probe_timed_out = False
            return actual

        def after_probe(start: float, end: float) -> None:
            self._probe_pending = False
            self.metrics.counter("probes").increment()
            if self._probe_timed_out:
                self._probe_timed_out = False
                self._schedule_probe()
                return
            self.estimator.observe(policy.probe_bytes, end - start)
            self._recover()

        self._uplink.acquire("probe", probe_duration, after_probe)

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------
    def run(self, requests: list[Request], until: float | None = None) -> GatewayResult:
        """Serve a request stream; drains fully unless ``until`` is set."""
        for request in sorted(requests, key=lambda r: (r.arrival, r.request_id)):
            self._engine.schedule(
                request.arrival - self._engine.now, _submitter(self, request)
            )
        makespan = self._engine.run(until=until)
        return self.collect(makespan)

    def collect(self, makespan: float | None = None) -> GatewayResult:
        """Assemble the result of a run someone else drove.

        A fleet drives many gateways on one shared engine and calls this
        after draining it; ``makespan`` defaults to the engine clock.
        """
        # a drained run leaves empty queues (dispatch fires on every CPU
        # idle); anything counted here means the run was truncated
        pending = sum(len(q) for q in self._queues.values()) + self._inflight
        return GatewayResult(
            scheme=self.scheme,
            makespan=self._engine.now if makespan is None else makespan,
            records=self._records,
            metrics=self.metrics,
            replan_events=self.replan_events,
            mobile=self._mobile,
            uplink=self._uplink,
            # under a shared batching cloud, utilization reports the
            # shared GPU this gateway rides on (same object for every
            # gateway wired to it)
            cloud=(
                self._cloud
                if self._cloud_server is None
                else self._cloud_server.resource
            ),
            pending=pending,
        )

    def report(self, result: GatewayResult) -> dict:
        """JSON-safe metrics report of one run (see docs/serving.md).

        Engine cache totals are published into the gateway's own
        registry as gauges first, so the snapshot (and any Prometheus
        exposition built from it) carries serving counters and planner
        cache health side by side.
        """
        self.planner.to_metrics(self.metrics)
        snapshot = self.metrics.snapshot()
        counters = snapshot["counters"]
        horizon = max(result.makespan, 1e-12)
        report = {
            "scheme": result.scheme,
            "makespan": result.makespan,
            "counters": counters,
            "gauges": snapshot["gauges"],
            "histograms": snapshot["histograms"],
            "replans": self.replan_events,
            "estimator": {
                "planned_bps": self.estimator.planned_bps,
                "estimate_bps": self.estimator.estimate_bps,
                "observations": self.estimator.observations,
            },
            "utilization": {
                "mobile": result.mobile.total_busy_time / horizon,
                "uplink": result.uplink.total_busy_time / horizon,
                "cloud": result.cloud.total_busy_time / horizon,
            },
            "throughput_rps": counters.get("served", 0) / horizon,
            "pending": result.pending,
            "balance_ok": (
                counters.get("served", 0)
                + counters.get("degraded", 0)
                + counters.get("dropped", 0)
                + result.pending
                == counters.get("arrived", 0)
            ),
            "engine_cache": self.planner.stats_snapshot()["totals"],
        }
        # opt-in sections: absent on fault-free gateways so their reports
        # stay byte-identical to the pre-fault code
        if self.resilience is not None:
            report["resilience"] = {
                "policy": self.resilience.as_dict(),
                "degraded_at_end": self._degraded,
            }
        if self.faults is not None:
            report["faults"] = self.faults.snapshot()
        return report


def _submitter(gateway: Gateway, request: Request):
    # default-arg binding would also work; a closure factory reads clearer
    return lambda: gateway.submit(request)
