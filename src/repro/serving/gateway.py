"""The offload gateway: multi-client serving on the event engine.

This is the continuously-running counterpart of the paper's one-shot
batch: clients stream inference requests into per-client FIFO queues;
the gateway admits (bounded queue depth, optional deadlines), assigns
each admitted request a partition from the current plan, and drives the
mobile-CPU → uplink → cloud-GPU chain on the discrete-event engine
(:mod:`repro.sim.engine`). Scheduling is the Johnson-order online
policy of :mod:`repro.extensions.online`: whenever the mobile stage
idles, the Johnson-preferred request among the queue heads runs next.

Partitions adapt: an :class:`~repro.serving.estimator.AdaptiveChannelEstimator`
folds every observed upload into an EWMA rate; on drift past its
threshold the gateway re-prices cost tables through the shared
:class:`~repro.engine.PlanningEngine` (a warm structure cache makes
this a per-rate table build, not a re-enumeration) and subsequent
admissions draw cuts from the new mix. Everything observable lands in a
:class:`~repro.serving.metrics.MetricsRegistry` whose snapshot is the
gateway's JSON report.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.baselines import single_job_optimal_cut
from repro.core.joint import Structure
from repro.core.plans import JobPlan
from repro.core.scheduling import johnson_order
from repro.engine import PlanningEngine
from repro.extensions.online import OnlineJpsScheduler
from repro.net.timeline import BandwidthTimeline
from repro.obs.tracer import NullTracer, Tracer
from repro.profiling.latency import CostTable
from repro.serving.estimator import AdaptiveChannelEstimator
from repro.serving.metrics import MetricsRegistry
from repro.serving.workload import Request
from repro.sim.engine import Engine, Resource
from repro.utils.validation import require_positive

__all__ = ["Gateway", "GatewayResult", "ServedRecord", "GATEWAY_SCHEMES"]

#: Schemes the gateway can serve under. ``JPS`` adapts its cut mix on
#: re-plans; the baselines' cut choices are bandwidth-invariant.
GATEWAY_SCHEMES = ("JPS", "LO", "CO", "PO")


@dataclass
class _ModelState:
    """Per-model planning state, rebuilt on every re-plan."""

    table: CostTable
    payloads: tuple[float, ...]       # upload bytes per cut position
    mix: tuple[int, ...]              # JPS round-robin cut sequence
    assigned: int = 0                 # monotone round-robin pointer


@dataclass
class _Ticket:
    """One admitted request moving through the pipeline."""

    request: Request
    plan: JobPlan
    payload_bytes: float
    admitted_at: float
    started: float | None = None
    completed: float | None = None
    # stage windows in virtual time, recorded as tracer spans at finish
    compute_window: tuple[float, float] | None = None
    comm_window: tuple[float, float] | None = None
    cloud_window: tuple[float, float] | None = None


@dataclass(frozen=True)
class ServedRecord:
    """Terminal outcome of one request (served or dropped)."""

    request_id: int
    client_id: str
    outcome: str                      # "served" | "rejected" | "expired"
    latency: float | None             # completion - arrival, served only


@dataclass
class GatewayResult:
    """What one gateway run produced."""

    scheme: str
    makespan: float
    records: list[ServedRecord]
    metrics: MetricsRegistry
    replan_events: list[dict]
    mobile: Resource
    uplink: Resource
    cloud: Resource
    pending: int                      # admitted but unfinished (truncated runs)


class Gateway:
    """Admission + adaptive dispatch over one simulated device fleet.

    ``timeline`` is the ground-truth uplink; the gateway never reads it
    directly — transfers are priced by the event engine at grant time
    and observed through the estimator. ``planner`` is shared across
    schemes/runs on purpose: the bandwidth-independent structure caches
    are what make adaptive re-planning affordable.
    """

    def __init__(
        self,
        timeline: BandwidthTimeline,
        planner: PlanningEngine | None = None,
        scheme: str = "JPS",
        estimator: AdaptiveChannelEstimator | None = None,
        initial_bps: float | None = None,
        max_queue_depth: int = 64,
        nominal_burst: int = 8,
        include_cloud: bool = True,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | NullTracer | None = None,
    ) -> None:
        if scheme not in GATEWAY_SCHEMES:
            raise ValueError(f"unknown scheme {scheme!r} (use one of {GATEWAY_SCHEMES})")
        require_positive(max_queue_depth, "max_queue_depth")
        require_positive(nominal_burst, "nominal_burst")
        self.timeline = timeline
        self.planner = planner or PlanningEngine()
        self.scheme = scheme
        self.estimator = estimator or AdaptiveChannelEstimator(
            initial_bps=initial_bps or timeline.rates_bps[0],
            setup_latency=timeline.setup_latency,
            header_bytes=timeline.header_bytes,
            protocol_overhead=timeline.protocol_overhead,
        )
        self.max_queue_depth = max_queue_depth
        self.nominal_burst = nominal_burst
        self.include_cloud = include_cloud
        self.metrics = metrics or MetricsRegistry()
        self.tracer = tracer or NullTracer()
        self.replan_events: list[dict] = []
        self._models: dict[str, _ModelState] = {}
        self._queues: dict[str, deque[_Ticket]] = {}
        self._client_order: list[str] = []
        self._records: list[ServedRecord] = []
        self._engine = Engine()
        self._mobile = Resource(self._engine, "mobile-cpu")
        self._uplink = Resource(self._engine, "uplink")
        self._cloud = Resource(self._engine, "cloud-gpu")
        self._cpu_claimed = False
        self._inflight = 0

    # ------------------------------------------------------------------
    # planning state
    # ------------------------------------------------------------------
    def _build_model_state(self, model: str) -> _ModelState:
        channel = self.estimator.channel()
        if self.planner.structure_of(model) is Structure.LINE:
            table = self.planner.line_table(model, channel)
            payloads = tuple(table.transfer_bytes_at(i) for i in range(table.k))
        else:
            frontier = self.planner.frontier_table(model, channel)
            table = frontier.table
            # a priced g of 0 marks the full cut (nothing crosses the link)
            payloads = tuple(
                cut.transfer_bytes if table.g[i] > 0 else 0.0
                for i, cut in enumerate(frontier.cuts)
            )
        mix = OnlineJpsScheduler(table, nominal_burst=self.nominal_burst).cut_mix
        return _ModelState(table=table, payloads=payloads, mix=mix)

    def _state_of(self, model: str) -> _ModelState:
        if model not in self._models:
            self._models[model] = self._build_model_state(model)
        return self._models[model]

    def _next_position(self, state: _ModelState) -> int:
        if self.scheme == "LO":
            return state.table.k - 1
        if self.scheme == "CO":
            return 0
        if self.scheme == "PO":
            return single_job_optimal_cut(state.table)
        position = state.mix[state.assigned % len(state.mix)]
        state.assigned += 1
        return position

    def _replan(self) -> None:
        old_bps = self.estimator.planned_bps
        drift = self.estimator.drift
        new_bps = self.estimator.rebase()
        carried = {model: state.assigned for model, state in self._models.items()}
        self._models = {model: self._build_model_state(model) for model in self._models}
        for model, assigned in carried.items():
            self._models[model].assigned = assigned
        self.metrics.counter("replans").increment()
        self.tracer.instant(
            "gateway/replan",
            timestamp=self._engine.now,
            lane=("gateway", "events"),
            old_bps=old_bps,
            new_bps=new_bps,
            drift=drift,
        )
        self.replan_events.append(
            {
                "time": self._engine.now,
                "old_bps": old_bps,
                "new_bps": new_bps,
                "drift": drift,
            }
        )

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def submit(self, request: Request) -> None:
        """Admit (or reject) one request at the current simulation time."""
        self.metrics.counter("arrived").increment()
        if request.client_id not in self._queues:
            self._queues[request.client_id] = deque()
            self._client_order.append(request.client_id)
        queue = self._queues[request.client_id]
        if len(queue) >= self.max_queue_depth:
            self.metrics.counter("dropped").increment()
            self.metrics.counter("dropped_queue_full").increment()
            self.tracer.instant(
                "gateway/drop",
                timestamp=self._engine.now,
                lane=("gateway", "events"),
                request_id=request.request_id,
                client=request.client_id,
                reason="queue_full",
            )
            self._records.append(
                ServedRecord(request.request_id, request.client_id, "rejected", None)
            )
            return
        state = self._state_of(request.model)
        position = self._next_position(state)
        f, g = state.table.stage_lengths(position)
        plan = JobPlan(
            job_id=request.request_id,
            model=request.model,
            cut_position=position,
            compute_time=f,
            comm_time=g,
            cloud_time=state.table.cloud_rest(position),
            cut_label=state.table.positions[position],
        )
        ticket = _Ticket(
            request=request,
            plan=plan,
            payload_bytes=state.payloads[position],
            admitted_at=self._engine.now,
        )
        queue.append(ticket)
        self.metrics.counter("admitted").increment()
        self.metrics.histogram("queue_depth").observe(len(queue))
        self._dispatch()

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _pick(self, heads: list[_Ticket]) -> _Ticket:
        if self.scheme == "JPS":
            stages = [t.plan.stages for t in heads]
            return heads[johnson_order(stages)[0]]
        return min(heads, key=lambda t: (t.request.arrival, t.request.request_id))

    def _dispatch(self) -> None:
        if self._cpu_claimed:
            return
        now = self._engine.now
        while True:
            heads = [self._queues[c][0] for c in self._client_order if self._queues[c]]
            if not heads:
                return
            expired = [t for t in heads if t.request.expiry < now]
            if expired:
                for ticket in expired:
                    self._queues[ticket.request.client_id].popleft()
                    self.metrics.counter("dropped").increment()
                    self.metrics.counter("dropped_deadline").increment()
                    self.tracer.instant(
                        "gateway/drop",
                        timestamp=now,
                        lane=("gateway", "events"),
                        request_id=ticket.request.request_id,
                        client=ticket.request.client_id,
                        reason="deadline",
                    )
                    self._records.append(
                        ServedRecord(
                            ticket.request.request_id,
                            ticket.request.client_id,
                            "expired",
                            None,
                        )
                    )
                continue
            ticket = self._pick(heads)
            self._queues[ticket.request.client_id].popleft()
            self._start(ticket)
            return

    def _start(self, ticket: _Ticket) -> None:
        self._cpu_claimed = True
        self._inflight += 1
        ticket.started = self._engine.now
        self.metrics.histogram("queue_wait").observe(
            self._engine.now - ticket.request.arrival
        )
        label = f"req{ticket.request.request_id}"

        def comm_duration(start: float) -> float:
            return self.timeline.transfer_end(start, ticket.payload_bytes) - start

        def after_compute(start: float, end: float) -> None:
            ticket.compute_window = (start, end)
            # the CPU is free the instant the compute stage ends: hand it
            # to the Johnson-next request before this one queues uplink
            self._cpu_claimed = False
            self._dispatch()
            if ticket.payload_bytes > 0:
                self._uplink.acquire(f"{label}/comm", comm_duration, after_comm)
            else:
                enter_cloud()

        def after_comm(start: float, end: float) -> None:
            ticket.comm_window = (start, end)
            self.estimator.observe(ticket.payload_bytes, end - start)
            if self.scheme == "JPS" and self.estimator.drifted():
                self._replan()
            enter_cloud()

        def enter_cloud() -> None:
            if self.include_cloud and ticket.plan.cloud_time > 0:
                self._cloud.acquire(
                    f"{label}/cloud", ticket.plan.cloud_time, after_cloud
                )
            else:
                finish()

        def after_cloud(start: float, end: float) -> None:
            ticket.cloud_window = (start, end)
            finish()

        def finish() -> None:
            ticket.completed = self._engine.now
            self._inflight -= 1
            latency = ticket.completed - ticket.request.arrival
            self.metrics.counter("served").increment()
            self.metrics.histogram("latency").observe(latency)
            self._record_spans(ticket, latency)
            self._records.append(
                ServedRecord(
                    ticket.request.request_id,
                    ticket.request.client_id,
                    "served",
                    latency,
                )
            )

        self._mobile.acquire(
            f"{label}/compute", ticket.plan.compute_time, after_compute
        )

    def _record_spans(self, ticket: _Ticket, latency: float) -> None:
        """Retro-record one served request's lifecycle as tracer spans.

        Virtual-time stage windows only become known as their DES
        callbacks fire, so the whole family — request parent, queue
        wait, then one span per executed stage — is recorded at finish.
        Each request is its own lane process (``req <id>``) with one
        track per stage, mirroring :func:`repro.sim.trace.pipeline_spans`.
        """
        rid = ticket.request.request_id
        process = f"req {rid}"
        parent = self.tracer.record(
            f"request {rid}",
            ticket.request.arrival,
            ticket.completed,
            lane=(process, "lifecycle"),
            request_id=rid,
            client=ticket.request.client_id,
            model=ticket.request.model,
            cut=ticket.plan.cut_label or ticket.plan.cut_position,
            latency=latency,
        )
        self.tracer.record(
            "queue", ticket.admitted_at, ticket.started, parent=parent, lane=(process, "queue")
        )
        for stage, resource, window in (
            ("compute", "mobile-cpu", ticket.compute_window),
            ("transfer", "uplink", ticket.comm_window),
            ("cloud", "cloud-gpu", ticket.cloud_window),
        ):
            if window is None:
                continue
            self.tracer.record(
                stage,
                window[0],
                window[1],
                parent=parent,
                lane=(process, resource),
                resource=resource,
            )

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------
    def run(self, requests: list[Request], until: float | None = None) -> GatewayResult:
        """Serve a request stream; drains fully unless ``until`` is set."""
        for request in sorted(requests, key=lambda r: (r.arrival, r.request_id)):
            self._engine.schedule(
                request.arrival - self._engine.now, _submitter(self, request)
            )
        makespan = self._engine.run(until=until)
        # a drained run leaves empty queues (dispatch fires on every CPU
        # idle); anything counted here means the run was truncated
        pending = sum(len(q) for q in self._queues.values()) + self._inflight
        return GatewayResult(
            scheme=self.scheme,
            makespan=makespan,
            records=self._records,
            metrics=self.metrics,
            replan_events=self.replan_events,
            mobile=self._mobile,
            uplink=self._uplink,
            cloud=self._cloud,
            pending=pending,
        )

    def report(self, result: GatewayResult) -> dict:
        """JSON-safe metrics report of one run (see docs/serving.md).

        Engine cache totals are published into the gateway's own
        registry as gauges first, so the snapshot (and any Prometheus
        exposition built from it) carries serving counters and planner
        cache health side by side.
        """
        self.planner.to_metrics(self.metrics)
        snapshot = self.metrics.snapshot()
        counters = snapshot["counters"]
        horizon = max(result.makespan, 1e-12)
        return {
            "scheme": result.scheme,
            "makespan": result.makespan,
            "counters": counters,
            "gauges": snapshot["gauges"],
            "histograms": snapshot["histograms"],
            "replans": self.replan_events,
            "estimator": {
                "planned_bps": self.estimator.planned_bps,
                "estimate_bps": self.estimator.estimate_bps,
                "observations": self.estimator.observations,
            },
            "utilization": {
                "mobile": result.mobile.total_busy_time / horizon,
                "uplink": result.uplink.total_busy_time / horizon,
                "cloud": result.cloud.total_busy_time / horizon,
            },
            "throughput_rps": counters.get("served", 0) / horizon,
            "pending": result.pending,
            "balance_ok": (
                counters.get("served", 0) + counters.get("dropped", 0) + result.pending
                == counters.get("arrived", 0)
            ),
            "engine_cache": self.planner.stats_snapshot()["totals"],
        }


def _submitter(gateway: Gateway, request: Request):
    # default-arg binding would also work; a closure factory reads clearer
    return lambda: gateway.submit(request)
