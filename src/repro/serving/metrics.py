"""Serving metrics: counters and streaming quantile histograms.

The gateway runs for simulated hours and millions of requests, so the
latency distribution cannot be kept as raw samples. A
:class:`StreamingHistogram` buckets observations on a geometric grid
(DDSketch-style): every quantile estimate carries a bounded *relative*
error set by ``relative_accuracy``, memory is O(number of occupied
buckets), and merging two histograms is bucket-wise addition. Counters
are plain monotone integers. A :class:`MetricsRegistry` names both and
snapshots the whole family into a JSON-safe dict — the wire format of
the gateway's metrics report (see ``docs/serving.md``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.utils.validation import require_non_negative

__all__ = ["Counter", "StreamingHistogram", "MetricsRegistry"]

#: Quantiles every snapshot reports, in order.
SNAPSHOT_QUANTILES = (0.50, 0.95, 0.99)


@dataclass
class Counter:
    """A monotone event counter."""

    name: str
    value: int = 0

    def increment(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"{self.name}: counters only move forward, got {amount}")
        self.value += amount


class StreamingHistogram:
    """Log-bucketed histogram with relative-error quantile estimates.

    A non-zero observation ``v`` lands in bucket ``ceil(log_gamma v)``
    with ``gamma = (1 + a) / (1 - a)``; the bucket's representative
    value ``2 * gamma^i / (gamma + 1)`` (the geometric midpoint) is then
    within a factor ``(1 ± a)`` of every value the bucket can hold, so
    ``quantile()`` is accurate to relative error ``a``. Zeros get their
    own bucket (latencies of dropped-at-admission work, empty queues).
    """

    def __init__(self, relative_accuracy: float = 0.01):
        if not 0 < relative_accuracy < 1:
            raise ValueError(
                f"relative_accuracy must be in (0, 1), got {relative_accuracy}"
            )
        self.relative_accuracy = relative_accuracy
        self._gamma = (1 + relative_accuracy) / (1 - relative_accuracy)
        self._log_gamma = math.log(self._gamma)
        self._buckets: dict[int, int] = {}
        self._zeros = 0
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        require_non_negative(value, "value")
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        if value == 0:
            self._zeros += 1
            return
        index = math.ceil(math.log(value) / self._log_gamma)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The q-quantile estimate (exact for min/max, else ±accuracy)."""
        if not 0 <= q <= 1:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        if q == 0:
            return self.min
        if q == 1:
            return self.max
        rank = q * (self.count - 1)
        seen = self._zeros
        if rank < seen:
            return 0.0
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if rank < seen:
                estimate = 2 * self._gamma**index / (self._gamma + 1)
                return min(max(estimate, self.min), self.max)
        return self.max

    def as_dict(self) -> dict[str, float]:
        """JSON-safe summary: count, sum, extremes, p50/p95/p99."""
        summary: dict[str, float] = {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }
        for q in SNAPSHOT_QUANTILES:
            summary[f"p{round(q * 100):02d}"] = self.quantile(q)
        return summary


@dataclass
class MetricsRegistry:
    """Named counters and histograms behind one snapshot call."""

    relative_accuracy: float = 0.01
    _counters: dict[str, Counter] = field(default_factory=dict)
    _histograms: dict[str, StreamingHistogram] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def histogram(self, name: str) -> StreamingHistogram:
        if name not in self._histograms:
            self._histograms[name] = StreamingHistogram(self.relative_accuracy)
        return self._histograms[name]

    def snapshot(self) -> dict[str, dict]:
        """Plain-dict view of every metric, stable key order."""
        return {
            "counters": {
                name: self._counters[name].value for name in sorted(self._counters)
            },
            "histograms": {
                name: self._histograms[name].as_dict()
                for name in sorted(self._histograms)
            },
        }
