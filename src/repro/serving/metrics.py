"""Deprecated location — metrics moved to :mod:`repro.obs.metrics`.

The serving-only registry grew into the cross-stack telemetry substrate
of :mod:`repro.obs` (gauges, labeled counters, histogram merge,
Prometheus exposition). This module remains as a backward-compatible
shim so ``from repro.serving.metrics import MetricsRegistry`` keeps
working; new code should import from :mod:`repro.obs.metrics` (or the
:mod:`repro.obs` package) directly. The shim re-exports, it does not
fork: both paths hand out the *same* classes, so registries built
through either are interchangeable. See ``docs/observability.md`` for
the deprecation path.
"""

from repro.obs.metrics import (
    SNAPSHOT_QUANTILES,
    Counter,
    Gauge,
    MetricsRegistry,
    StreamingHistogram,
)

__all__ = [
    "Counter",
    "Gauge",
    "StreamingHistogram",
    "MetricsRegistry",
    "SNAPSHOT_QUANTILES",
]
