"""Removed — metrics live in :mod:`repro.obs.metrics`.

The serving-only registry grew into the cross-stack telemetry substrate
of :mod:`repro.obs` (gauges, labeled counters, histogram merge,
Prometheus exposition) two PRs ago; this module shimmed the old import
path through one deprecation cycle and is now gone. Importing it fails
loudly (below) instead of silently forking the classes.
"""

raise ImportError(
    "repro.serving.metrics was removed: import Counter, Gauge, "
    "MetricsRegistry, StreamingHistogram, and SNAPSHOT_QUANTILES from "
    "repro.obs.metrics (or the repro.obs package) instead. "
    "See docs/observability.md for the migration notes."
)
