"""Network substrate: bandwidth presets, traffic shaping, channel model."""

from repro.net.bandwidth import (
    FOUR_G,
    PRESETS,
    THREE_G,
    WIFI,
    BandwidthPreset,
    TrafficShaper,
)
from repro.net.channel import Channel
from repro.net.timeline import BandwidthTimeline

__all__ = [
    "BandwidthPreset",
    "BandwidthTimeline",
    "Channel",
    "FOUR_G",
    "PRESETS",
    "THREE_G",
    "TrafficShaper",
    "WIFI",
]
