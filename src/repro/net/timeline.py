"""Time-varying bandwidth: piecewise-constant uplink rate traces.

The paper shapes a *fixed* rate per trial (wondershaper). Real wireless
links fluctuate during a burst. A :class:`BandwidthTimeline` is a
piecewise-constant rate function `b(t)`; the time to move `B` payload
bits starting at `t0` solves

    ∫_{t0}^{t_end} b(t) dt = B

computed segment by segment in closed form. The discrete-event pipeline
consumes it through start-time-dependent transfer durations
(:func:`repro.sim.pipeline.simulate_schedule_on_timeline`).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

from repro.utils.units import BITS_PER_BYTE
from repro.utils.validation import require_non_negative, require_positive

__all__ = ["BandwidthTimeline"]


@dataclass(frozen=True)
class BandwidthTimeline:
    """Piecewise-constant uplink rate: ``rates[i]`` holds on
    ``[times[i], times[i+1])``; the last rate extends forever.

    ``times[0]`` must be 0.0 and times strictly increasing.
    """

    times: tuple[float, ...]
    rates_bps: tuple[float, ...]
    setup_latency: float = 0.0
    header_bytes: float = 0.0
    protocol_overhead: float = 1.0

    def __post_init__(self) -> None:
        if not self.times or self.times[0] != 0.0:
            raise ValueError("times must start at 0.0")
        if len(self.times) != len(self.rates_bps):
            raise ValueError("times and rates must have equal lengths")
        for a, b in zip(self.times, self.times[1:]):
            if b <= a:
                raise ValueError("times must be strictly increasing")
        for rate in self.rates_bps:
            require_positive(rate, "rate")
        require_non_negative(self.setup_latency, "setup_latency")
        require_non_negative(self.header_bytes, "header_bytes")
        require_positive(self.protocol_overhead, "protocol_overhead")

    @classmethod
    def constant(cls, rate_bps: float, **kwargs) -> "BandwidthTimeline":
        return cls(times=(0.0,), rates_bps=(rate_bps,), **kwargs)

    @classmethod
    def steps_mbps(cls, steps: list[tuple[float, float]], **kwargs) -> "BandwidthTimeline":
        """Build from ``[(start_time_s, rate_mbps), ...]``."""
        if not steps:
            raise ValueError("need at least one step")
        times = tuple(t for t, _ in steps)
        rates = tuple(r * 1e6 for _, r in steps)
        return cls(times=times, rates_bps=rates, **kwargs)

    def with_rate_windows(
        self,
        windows: "list[tuple[float, float, float]]",
        multiply: bool = False,
    ) -> "BandwidthTimeline":
        """A copy with rate windows overlaid on the base trace.

        Each window is ``(start, end, value)``: on ``[start, end)`` the
        rate becomes ``value`` bits/s (or ``base_rate * value`` when
        ``multiply`` is true — bandwidth spikes/sags). Windows apply in
        order, later windows winning where they overlap; framing
        constants carry over unchanged. This is the plug-in point for
        fault injection (:mod:`repro.faults`): blackouts and spikes
        compose onto any ground-truth trace without the consumer — the
        event engine's start-time-dependent transfer pricing — changing
        at all.
        """
        if not windows:
            return self
        for start, end, value in windows:
            require_non_negative(start, "window start")
            if not end > start:
                raise ValueError(f"window end {end} must be > start {start}")
            if end == float("inf"):
                raise ValueError("window end must be finite")
            require_positive(value, "window value")
        edges = {t for w in windows for t in w[:2]}
        points = sorted({*self.times, *edges})
        rates = []
        for t in points:
            rate = self.rate_at(t)
            for start, end, value in windows:
                if start <= t < end:
                    rate = rate * value if multiply else value
            rates.append(rate)
        # merge runs of equal rates so repeated overlays stay compact
        times_out = [points[0]]
        rates_out = [rates[0]]
        for t, r in zip(points[1:], rates[1:]):
            if r != rates_out[-1]:
                times_out.append(t)
                rates_out.append(r)
        return BandwidthTimeline(
            times=tuple(times_out),
            rates_bps=tuple(rates_out),
            setup_latency=self.setup_latency,
            header_bytes=self.header_bytes,
            protocol_overhead=self.protocol_overhead,
        )

    # ------------------------------------------------------------------
    def rate_at(self, t: float) -> float:
        """Instantaneous rate in bits/s at time ``t`` (>= 0)."""
        require_non_negative(t, "t")
        index = bisect_right(self.times, t) - 1
        return self.rates_bps[index]

    def transfer_end(self, start: float, payload_bytes: float) -> float:
        """Completion time of a transfer of ``payload_bytes`` starting at
        ``start`` (absolute simulation time). Zero payloads are free."""
        require_non_negative(start, "start")
        require_non_negative(payload_bytes, "payload_bytes")
        if payload_bytes == 0:
            return start
        remaining_bits = (
            (payload_bytes + self.header_bytes) * self.protocol_overhead * BITS_PER_BYTE
        )
        t = start + self.setup_latency
        index = bisect_right(self.times, t) - 1
        while True:
            rate = self.rates_bps[index]
            segment_end = (
                self.times[index + 1] if index + 1 < len(self.times) else float("inf")
            )
            window = segment_end - t
            bits_in_window = rate * window
            if bits_in_window >= remaining_bits:
                return t + remaining_bits / rate
            remaining_bits -= bits_in_window
            t = segment_end
            index += 1

    def uplink_time(self, payload_bytes: float) -> float:
        """Channel-compatible view: transfer duration starting at t = 0.

        Lets planners that expect a :class:`repro.net.Channel` price
        against the *initial* rate — the natural "plan with what you can
        measure now" behaviour.
        """
        if payload_bytes == 0:
            return 0.0
        return self.transfer_end(0.0, payload_bytes)
