"""Bandwidth presets and the wondershaper-style traffic shaper.

The paper limits the Raspberry Pi's uplink with ``wondershaper`` to
emulate cellular conditions, quoting typical rates (after [7], Hu et
al. INFOCOM'19): 3G = 1.1 Mbps, 4G = 5.85 Mbps, Wi-Fi = 18.88 Mbps.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.units import mbps
from repro.utils.validation import require_positive

__all__ = ["BandwidthPreset", "THREE_G", "FOUR_G", "WIFI", "PRESETS", "TrafficShaper"]


@dataclass(frozen=True)
class BandwidthPreset:
    """A named uplink condition."""

    name: str
    uplink_bps: float
    downlink_bps: float

    def __post_init__(self) -> None:
        require_positive(self.uplink_bps, "uplink_bps")
        require_positive(self.downlink_bps, "downlink_bps")


THREE_G = BandwidthPreset("3G", uplink_bps=mbps(1.1), downlink_bps=mbps(2.0))
FOUR_G = BandwidthPreset("4G", uplink_bps=mbps(5.85), downlink_bps=mbps(12.0))
WIFI = BandwidthPreset("Wi-Fi", uplink_bps=mbps(18.88), downlink_bps=mbps(40.0))

PRESETS: dict[str, BandwidthPreset] = {p.name: p for p in (THREE_G, FOUR_G, WIFI)}


@dataclass
class TrafficShaper:
    """Mutable rate limiter applied to a link (the wondershaper analog).

    Experiments sweep bandwidth by updating ``uplink_bps`` on a live
    shaper rather than rebuilding the channel, mirroring how the testbed
    re-runs ``wondershaper`` between trials.
    """

    uplink_bps: float
    downlink_bps: float

    def __post_init__(self) -> None:
        require_positive(self.uplink_bps, "uplink_bps")
        require_positive(self.downlink_bps, "downlink_bps")

    @classmethod
    def from_preset(cls, preset: BandwidthPreset) -> "TrafficShaper":
        return cls(uplink_bps=preset.uplink_bps, downlink_bps=preset.downlink_bps)

    def set_uplink_mbps(self, value: float) -> None:
        require_positive(value, "uplink Mbps")
        self.uplink_bps = mbps(value)

    def set_downlink_mbps(self, value: float) -> None:
        require_positive(value, "downlink Mbps")
        self.downlink_bps = mbps(value)
