"""The communication channel model ``t = w0 + w1 * s / b`` (paper §6.1).

``w0`` is the fixed cost of setting up the transfer (gRPC request
framing, TCP round trip); the linear term is the serialization delay of
``s`` bytes over ``b`` bits/s. ``w1`` absorbs protocol overhead — with
ideal framing ``w1 = 8`` bits/byte exactly; measured channels fit a
slightly larger slope.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.bandwidth import BandwidthPreset, TrafficShaper
from repro.utils.units import BITS_PER_BYTE, ms
from repro.utils.validation import require_non_negative, require_positive

__all__ = ["Channel"]

#: Default gRPC-ish setup latency (connection reuse assumed, header cost only).
DEFAULT_SETUP_LATENCY = ms(5.0)

#: Bytes of framing added to every message (serialization header + gRPC envelope).
DEFAULT_HEADER_BYTES = 256


@dataclass
class Channel:
    """An uplink/downlink pair with setup latency and framing overhead.

    The ``shaper`` is shared state: experiments mutate it to sweep
    bandwidths, and every channel reading it sees the new rate — exactly
    the wondershaper behaviour on the testbed.
    """

    shaper: TrafficShaper
    setup_latency: float = DEFAULT_SETUP_LATENCY
    header_bytes: int = DEFAULT_HEADER_BYTES
    protocol_overhead: float = 1.05  # w1 / 8: TCP/IP + gRPC framing expansion

    def __post_init__(self) -> None:
        require_non_negative(self.setup_latency, "setup_latency")
        require_non_negative(self.header_bytes, "header_bytes")
        require_positive(self.protocol_overhead, "protocol_overhead")

    @classmethod
    def from_preset(cls, preset: BandwidthPreset, **kwargs) -> "Channel":
        return cls(shaper=TrafficShaper.from_preset(preset), **kwargs)

    @property
    def uplink_bps(self) -> float:
        return self.shaper.uplink_bps

    @property
    def downlink_bps(self) -> float:
        return self.shaper.downlink_bps

    def uplink_time(self, payload_bytes: float) -> float:
        """Seconds to upload ``payload_bytes`` (the paper's ``g``).

        Zero bytes means nothing crosses the network (a fully-local job)
        and costs nothing — no setup latency either.
        """
        require_non_negative(payload_bytes, "payload_bytes")
        if payload_bytes == 0:
            return 0.0
        wire_bytes = (payload_bytes + self.header_bytes) * self.protocol_overhead
        return self.setup_latency + wire_bytes * BITS_PER_BYTE / self.shaper.uplink_bps

    def downlink_time(self, payload_bytes: float) -> float:
        """Seconds to download ``payload_bytes`` (result return)."""
        require_non_negative(payload_bytes, "payload_bytes")
        if payload_bytes == 0:
            return 0.0
        wire_bytes = (payload_bytes + self.header_bytes) * self.protocol_overhead
        return self.setup_latency + wire_bytes * BITS_PER_BYTE / self.shaper.downlink_bps
