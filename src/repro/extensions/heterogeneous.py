"""Heterogeneous job sets — the paper's closing future-work item.

A mobile device may run inference jobs of *different* DNNs at once
(e.g. a detector plus a segmenter per camera frame). Johnson's rule
never needed homogeneity — only the partition theory did — so the
natural extension is:

1. partition each model's job group with the line machinery (its own
   crossing layer + two-type split), then
2. pool every job into a single 2-stage flow shop and let Johnson's
   rule interleave the models.

Step 1 is per-model greedy: it ignores that another model's jobs can
hide this model's communication. ``rebalance=True`` adds a coordinate-
descent pass — re-split one model's jobs while holding the others fixed,
evaluating the pooled makespan exactly — which recovers most of the
coupling at O(rounds · Σn) cost. The benchmark suite quantifies both.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.partition import binary_search_cut, split_exact
from repro.core.plans import JobPlan, Schedule
from repro.core.scheduling import flow_shop_makespan, johnson_order, schedule_jobs
from repro.profiling.latency import CostTable
from repro.utils.validation import require_positive

__all__ = ["ModelJobs", "jps_heterogeneous"]


@dataclass(frozen=True)
class ModelJobs:
    """A homogeneous group within a heterogeneous job set."""

    table: CostTable
    count: int

    def __post_init__(self) -> None:
        require_positive(self.count, "count")


def _plans_for_counts(
    group: ModelJobs, l_star: int, n_a: int, base_id: int
) -> list[JobPlan]:
    plans = []
    for index in range(group.count):
        position = l_star - 1 if index < n_a else l_star
        f, g = group.table.stage_lengths(position)
        plans.append(
            JobPlan(
                job_id=base_id + index,
                model=group.table.model_name,
                cut_position=position,
                compute_time=f,
                comm_time=g,
                cloud_time=group.table.cloud_rest(position),
                cut_label=group.table.positions[position],
            )
        )
    return plans


def _pooled_makespan(groups: list[ModelJobs], l_stars: list[int], n_as: list[int]) -> float:
    stages = []
    for group, l_star, n_a in zip(groups, l_stars, n_as):
        a = group.table.stage_lengths(l_star - 1) if l_star > 0 else None
        b = group.table.stage_lengths(l_star)
        stages.extend([a] * n_a if a else [])
        stages.extend([b] * (group.count - n_a))
    order = johnson_order(stages)
    return flow_shop_makespan([stages[i] for i in order])


def jps_heterogeneous(
    groups: list[ModelJobs], rebalance: bool = True, max_rounds: int = 4
) -> Schedule:
    """Joint partition and scheduling of a mixed-model job set."""
    if not groups:
        raise ValueError("need at least one model group")
    l_stars = [binary_search_cut(g.table) for g in groups]
    n_as: list[int] = []
    for group, l_star in zip(groups, l_stars):
        if l_star == 0:
            n_as.append(0)
        else:
            n_as.append(split_exact(group.table, l_star, group.count).n_a)

    if rebalance and len(groups) > 1:
        best = _pooled_makespan(groups, l_stars, n_as)
        for _ in range(max_rounds):
            improved = False
            for gi, (group, l_star) in enumerate(zip(groups, l_stars)):
                if l_star == 0:
                    continue
                for candidate in range(group.count + 1):
                    if candidate == n_as[gi]:
                        continue
                    trial = n_as.copy()
                    trial[gi] = candidate
                    value = _pooled_makespan(groups, l_stars, trial)
                    if value < best - 1e-15:
                        best, n_as, improved = value, trial, True
            if not improved:
                break

    plans: list[JobPlan] = []
    base = 0
    for group, l_star, n_a in zip(groups, l_stars, n_as):
        plans.extend(_plans_for_counts(group, l_star, n_a, base))
        base += group.count
    schedule = schedule_jobs(plans, method="JPS-hetero")
    return Schedule(
        jobs=schedule.jobs,
        makespan=schedule.makespan,
        method="JPS-hetero",
        metadata={
            "models": [g.table.model_name for g in groups],
            "l_stars": l_stars,
            "n_a": n_as,
            "rebalanced": rebalance,
        },
    )
