"""Memory-constrained partitioning (beyond the paper).

The paper assumes the mobile device can host any prefix of the DNN. On
real devices the binding constraint is often RAM: the mobile side must
hold its layers' weights plus the largest live activation. This module
prices each cut position's mobile memory footprint and restricts the
JPS machinery to the positions that fit a budget.

Footprint of cutting after position ``i`` (float32):

* weights of every mobile-side layer (they stay resident), plus
* the peak activation: the largest single tensor materialized on the
  mobile side (a simple single-buffer executor model).
"""

from __future__ import annotations


from repro.core.joint import jps_line
from repro.core.plans import Schedule
from repro.nn.layers import numel
from repro.nn.network import LayerNode
from repro.profiling.latency import CostTable
from repro.utils.units import FLOAT32_BYTES
from repro.utils.validation import require_positive

__all__ = ["mobile_memory_bytes", "feasible_positions", "restrict_table",
           "jps_memory_constrained"]


def _layers_at(table: CostTable, position: int) -> list[LayerNode]:
    if table.graph is None:
        raise ValueError(
            f"{table.model_name}: memory accounting needs a graph-backed table"
        )
    from repro.profiling.latency import _payload_layers

    layers: list[LayerNode] = []
    for block_id in table.positions[: position + 1]:
        layers.extend(_payload_layers(table.graph.payload(block_id)))
    return layers


def mobile_memory_bytes(table: CostTable, position: int) -> float:
    """Weights + peak activation of the mobile side of cut ``position``."""
    layers = _layers_at(table, position)
    weights = sum(layer.params for layer in layers) * FLOAT32_BYTES
    peak_activation = max(
        (numel(layer.output_shape) * FLOAT32_BYTES for layer in layers),
        default=0.0,
    )
    return weights + peak_activation


def feasible_positions(table: CostTable, budget_bytes: float) -> list[int]:
    """Cut positions whose mobile footprint fits the budget.

    The footprint grows with the position (weights accumulate), so the
    feasible set is a prefix of the position range. Position 0 (the
    Input pseudo-layer: no weights, just the input frame) is always
    feasible for any budget that can hold the input at all.
    """
    require_positive(budget_bytes, "budget_bytes")
    feasible = []
    for position in range(table.k):
        if mobile_memory_bytes(table, position) <= budget_bytes:
            feasible.append(position)
        else:
            break  # monotone: later positions only add weights
    return feasible


def restrict_table(table: CostTable, positions: list[int]) -> CostTable:
    """A cost table restricted to the given positions (order preserved).

    The final surviving position keeps its true ``g`` — under a memory
    budget the device may simply be *unable* to run everything locally,
    so the restricted table legitimately loses the g=0 endpoint.
    """
    if not positions:
        raise ValueError("no feasible cut positions under this budget")
    return CostTable(
        model_name=f"{table.model_name}/restricted",
        positions=tuple(table.positions[i] for i in positions),
        f=table.f[positions],
        g=table.g[positions],
        cloud=table.cloud[positions],
        graph=None,
    )


def jps_memory_constrained(
    table: CostTable, n: int, budget_bytes: float
) -> Schedule:
    """JPS over the memory-feasible cut positions only.

    Uses the all-pairs split: the feasible table can be short and
    irregular, so the adjacent-pair restriction is not reliable there.
    Raises if no position fits (the device cannot even hold the input).
    """
    feasible = feasible_positions(table, budget_bytes)
    restricted = restrict_table(table, feasible)
    schedule = jps_line(restricted, n, split="pair")
    return Schedule(
        jobs=schedule.jobs,
        makespan=schedule.makespan,
        method="JPS-mem",
        metadata={
            **schedule.metadata,
            "budget_bytes": budget_bytes,
            "feasible_positions": len(feasible),
            "total_positions": table.k,
        },
    )
