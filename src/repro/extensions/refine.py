"""End-effect refinement on top of the two-type JPS split (ours, not the
paper's).

Prop. 4.1 shows the first scheduled job contributes its *full*
computation stage to the makespan and the last its *full* communication
stage. The two-type split optimizes the pipeline's steady state but not
these end effects; brute-force solutions (Fig. 11) visibly exploit them
by giving the final job a deeper cut (smaller g) and sometimes the first
job a shallower one (smaller f).

``refine_end_jobs`` searches the structured family

    [head job at position p_h] + [two-type interior over (l*-1, l*)]
    + [tail job at position p_t]

with ``p_h <= l*`` and ``p_t >= l*``, evaluating every candidate with
the exact Johnson-ordered makespan. The identity configuration is in
the family, so the result is never worse than the input JPS schedule.
Complexity: O(l* · (k - l*) · n) exact evaluations of O(n) each —
milliseconds at the paper's n = 100.
"""

from __future__ import annotations

from repro.core.partition import binary_search_cut
from repro.core.plans import JobPlan, Schedule
from repro.core.scheduling import flow_shop_makespan, johnson_order
from repro.profiling.latency import CostTable

__all__ = ["refine_end_jobs"]


def _plan_at(table: CostTable, job_id: int, position: int) -> JobPlan:
    f, g = table.stage_lengths(position)
    return JobPlan(
        job_id=job_id,
        model=table.model_name,
        cut_position=position,
        compute_time=f,
        comm_time=g,
        cloud_time=table.cloud_rest(position),
        cut_label=table.positions[position],
        mobile_nodes=(
            table.mobile_nodes_at(position) if table.graph is not None else None
        ),
    )


def _johnson_makespan(stages: list[tuple[float, float]]) -> float:
    order = johnson_order(stages)
    return flow_shop_makespan([stages[i] for i in order])


def refine_end_jobs(table: CostTable, schedule: Schedule) -> Schedule:
    """Improve a JPS schedule by re-cutting its boundary jobs.

    Returns a schedule whose makespan is <= the input's. For fewer than
    two jobs (no distinct head and tail) the input is returned as-is.
    """
    n = len(schedule.jobs)
    if n < 2:
        return schedule

    l_star = binary_search_cut(table)
    pair = [max(l_star - 1, 0), l_star]
    stage_of = [table.stage_lengths(p) for p in range(table.k)]

    best_makespan = flow_shop_makespan([p.stages for p in schedule.jobs])
    best_config: tuple[int, int, int] | None = None

    head_candidates = range(0, l_star + 1)
    tail_candidates = range(l_star, table.k)
    interior = n - 2
    for p_h in head_candidates:
        for p_t in tail_candidates:
            for n_a in range(interior + 1):
                stages = (
                    [stage_of[p_h]]
                    + [stage_of[pair[0]]] * n_a
                    + [stage_of[pair[1]]] * (interior - n_a)
                    + [stage_of[p_t]]
                )
                makespan = _johnson_makespan(stages)
                if makespan < best_makespan - 1e-15:
                    best_makespan = makespan
                    best_config = (p_h, p_t, n_a)

    if best_config is None:
        return schedule

    p_h, p_t, n_a = best_config
    positions = [p_h] + [pair[0]] * n_a + [pair[1]] * (interior - n_a) + [p_t]
    plans = [_plan_at(table, job_id, pos) for job_id, pos in enumerate(positions)]
    order = johnson_order([p.stages for p in plans])
    ordered = tuple(plans[i] for i in order)
    return Schedule(
        jobs=ordered,
        makespan=best_makespan,
        method=f"{schedule.method}+refine",
        metadata={
            **schedule.metadata,
            "refined": True,
            "head_cut": table.positions[p_h],
            "tail_cut": table.positions[p_t],
        },
    )
