"""Three-stage flow shop: dropping the "cloud time is negligible" assumption.

The paper argues (Fig. 4a) that cloud computation is orders of magnitude
below mobile computation and communication and schedules a 2-stage shop.
This module keeps the third stage:

* the exact 3-machine permutation recurrence,
* Johnson's classical *3-machine special case*: when
  ``min f >= max g`` or ``min c >= max g`` (the middle machine is
  dominated), ordering by Johnson's rule on the surrogate 2-machine jobs
  ``(f + g, g + c)`` is optimal,
* a checker for whether the special case applies — for every cost table
  in this repo the *cloud* machine is dominated by both others, which is
  the quantitative footing under the paper's 2-stage reduction.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.plans import JobPlan, Schedule

__all__ = [
    "flow_shop3_completion_times",
    "flow_shop3_makespan",
    "johnson_dominance_holds",
    "johnson3_order",
    "schedule_jobs_3stage",
]

Stage3 = tuple[float, float, float]


def flow_shop3_completion_times(stages: Sequence[Stage3]) -> list[tuple[float, float, float]]:
    """Per-job stage completion times of a 3-machine permutation schedule."""
    out: list[tuple[float, float, float]] = []
    c1 = c2 = c3 = 0.0
    for f, g, c in stages:
        if min(f, g, c) < 0:
            raise ValueError(f"stage lengths must be >= 0, got ({f}, {g}, {c})")
        c1 += f
        c2 = max(c2, c1) + g
        c3 = max(c3, c2) + c
        out.append((c1, c2, c3))
    return out


def flow_shop3_makespan(stages: Sequence[Stage3]) -> float:
    if not stages:
        return 0.0
    return flow_shop3_completion_times(stages)[-1][2]


def johnson_dominance_holds(stages: Sequence[Stage3]) -> bool:
    """True if machine 2 is dominated (Johnson's 3-machine condition)."""
    if not stages:
        return True
    max_g = max(s[1] for s in stages)
    min_f = min(s[0] for s in stages)
    min_c = min(s[2] for s in stages)
    return min_f >= max_g or min_c >= max_g


def johnson3_order(stages: Sequence[Stage3]) -> list[int]:
    """Johnson order on the surrogate jobs ``(f+g, g+c)``.

    Optimal when :func:`johnson_dominance_holds`; otherwise a standard
    heuristic (the 3-machine problem is NP-hard in general).
    """
    surrogate = [(f + g, g + c) for f, g, c in stages]
    s1 = [i for i, (a, b) in enumerate(surrogate) if a < b]
    s2 = [i for i, (a, b) in enumerate(surrogate) if a >= b]
    s1.sort(key=lambda i: (surrogate[i][0], i))
    s2.sort(key=lambda i: (-surrogate[i][1], i))
    return s1 + s2


def two_stage_approximation_gap(stages: Sequence[Stage3]) -> float:
    """How much the paper's 2-stage reduction under-reports the makespan.

    Returns ``makespan_3stage - makespan_2stage`` for the given order.
    The gap is bounded by ``max c + total idle`` and in practice — cloud
    times hundreds of times below the other stages — is under one cloud
    layer's worth of time; the benchmark suite reports it per model.
    """
    if not stages:
        return 0.0
    three = flow_shop3_makespan(stages)
    c1 = c2 = 0.0
    for f, g, _ in stages:
        c1 += f
        c2 = max(c2, c1) + g
    return three - c2


def schedule_jobs_3stage(plans: Sequence[JobPlan]) -> Schedule:
    """Order plans with the surrogate Johnson rule; exact 3-stage makespan."""
    stages = [(p.compute_time, p.comm_time, p.cloud_time) for p in plans]
    order = johnson3_order(stages)
    ordered = tuple(plans[i] for i in order)
    makespan = flow_shop3_makespan(
        [(p.compute_time, p.comm_time, p.cloud_time) for p in ordered]
    )
    return Schedule(
        jobs=ordered,
        makespan=makespan,
        method="johnson3",
        metadata={"dominance": johnson_dominance_holds(stages)},
    )
