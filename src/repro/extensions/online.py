"""Online scheduling: jobs that arrive over time (beyond the paper).

§3.1 releases all ``n`` jobs at time 0 — the multi-camera burst case.
Video pipelines instead deliver frame bursts at a fixed rate. This
module extends the flow-shop machinery with release times:

* :func:`flow_shop_makespan_with_releases` — exact completion times
  when a job's computation may not start before its release.
* :class:`OnlineJpsScheduler` — a dispatching policy: whenever the
  mobile CPU goes idle, (re-)apply Johnson's rule to the jobs that have
  arrived and not yet started. Partitions come from the JPS two-type
  split computed once per cost table (cut decisions do not depend on
  arrival times; the order does).
* :func:`clairvoyant_makespan` — the offline bound: Johnson's rule over
  all jobs with releases ignored, a lower bound no online policy beats.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.partition import binary_search_cut, split_exact
from repro.core.plans import JobPlan
from repro.core.scheduling import johnson_order
from repro.profiling.latency import CostTable
from repro.utils.validation import require_non_negative, require_positive

__all__ = [
    "ReleasedJob",
    "flow_shop_makespan_with_releases",
    "clairvoyant_makespan",
    "offline_lower_bound",
    "OnlineJpsScheduler",
]


@dataclass(frozen=True)
class ReleasedJob:
    """A planned job plus its arrival time."""

    plan: JobPlan
    release: float

    def __post_init__(self) -> None:
        require_non_negative(self.release, "release")


def flow_shop_makespan_with_releases(jobs: list[ReleasedJob]) -> float:
    """Exact 2-stage makespan executing ``jobs`` in the given order.

    ``C1[j] = max(C1[j-1], r_j) + f_j`` — the CPU additionally waits for
    the job to exist; the uplink recurrence is unchanged.
    """
    c1 = c2 = 0.0
    for job in jobs:
        f, g = job.plan.stages
        c1 = max(c1, job.release) + f
        c2 = max(c2, c1) + g
    return c2


def clairvoyant_makespan(jobs: list[ReleasedJob]) -> float:
    """Johnson order over all jobs, releases still enforced.

    A *reference heuristic*, not a bound in either direction: the
    release-time flow shop is NP-hard and a fixed Johnson order can idle
    the CPU waiting for a late-arriving communication-heavy job — cases
    where the online dispatcher legitimately does better. For a true
    lower bound use :func:`offline_lower_bound`.
    """
    stages = [j.plan.stages for j in jobs]
    order = johnson_order(stages)
    return flow_shop_makespan_with_releases([jobs[i] for i in order])


def offline_lower_bound(jobs: list[ReleasedJob]) -> float:
    """A valid lower bound for any policy: max of

    * the Johnson makespan with all releases relaxed to 0 (optimal for
      the relaxation), and
    * for each job, its release plus its own two stages (it must fully
      run after it arrives).
    """
    from repro.core.scheduling import flow_shop_makespan

    stages = [j.plan.stages for j in jobs]
    order = johnson_order(stages)
    relaxed = flow_shop_makespan([stages[i] for i in order])
    per_job = max((j.release + j.plan.compute_time + j.plan.comm_time for j in jobs),
                  default=0.0)
    return max(relaxed, per_job)


@dataclass
class OnlineJpsScheduler:
    """Dispatch arrived jobs with Johnson's rule, cuts fixed by JPS.

    The cut *mix* is precomputed from the cost table (two-type split for
    a nominal burst size); each arriving job takes the next cut from the
    mix in round-robin order, and the dispatcher picks, whenever the CPU
    frees up, the Johnson-best among the arrived-but-unstarted jobs.
    """

    table: CostTable
    nominal_burst: int = 8
    _mix: list[int] = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        require_positive(self.nominal_burst, "nominal_burst")
        l_star = binary_search_cut(self.table)
        if l_star == 0:
            self._mix = [0]
        else:
            split = split_exact(self.table, l_star, self.nominal_burst)
            self._mix = [split.position_a] * split.n_a + [split.position_b] * split.n_b
            if not self._mix:
                self._mix = [l_star]

    @property
    def cut_mix(self) -> tuple[int, ...]:
        """The round-robin cut sequence (two-type split over the nominal burst)."""
        return tuple(self._mix)

    def cut_for(self, index: int) -> int:
        """Cut position assigned to the ``index``-th admitted job."""
        return self._mix[index % len(self._mix)]

    def assign_cuts(self, releases: list[float], model: str = "online") -> list[ReleasedJob]:
        """Round-robin the precomputed cut mix over arriving jobs."""
        jobs = []
        for index, release in enumerate(sorted(releases)):
            position = self.cut_for(index)
            f, g = self.table.stage_lengths(position)
            jobs.append(
                ReleasedJob(
                    plan=JobPlan(
                        job_id=index, model=model, cut_position=position,
                        compute_time=f, comm_time=g,
                        cut_label=self.table.positions[position],
                    ),
                    release=release,
                )
            )
        return jobs

    def dispatch(self, jobs: list[ReleasedJob]) -> tuple[list[ReleasedJob], float]:
        """Simulate the online policy; returns (execution order, makespan).

        Event loop on CPU availability: among arrived, unstarted jobs
        pick the Johnson-preferred one; if none has arrived, idle until
        the next release.
        """
        pending = sorted(jobs, key=lambda j: j.release)
        started: list[ReleasedJob] = []
        c1 = c2 = 0.0
        remaining = list(range(len(pending)))
        while remaining:
            arrived = [i for i in remaining if pending[i].release <= c1 + 1e-15]
            if not arrived:
                c1 = min(pending[i].release for i in remaining)
                continue
            stages = [pending[i].plan.stages for i in arrived]
            pick = arrived[johnson_order(stages)[0]]
            job = pending[pick]
            f, g = job.plan.stages
            c1 = max(c1, job.release) + f
            c2 = max(c2, c1) + g
            started.append(job)
            remaining.remove(pick)
        return started, c2
