"""Multiple mobile devices sharing one wireless uplink (beyond the paper).

Two smart-glasses on the same access point each run their own JPS
pipeline, but their uploads contend for a single channel. The coupling
breaks the clean 2-machine flow shop: per device it is still
compute→upload, yet the upload "machine" is shared FIFO across devices.

This module simulates that system on the discrete-event engine (one CPU
resource per device, one shared uplink) and provides a simple
contention-aware planning rule: plan each device's JPS against its
*fair share* of the channel (bandwidth / #devices) rather than the full
rate, which rebalances cuts toward deeper, smaller-upload positions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.joint import jps_line
from repro.core.plans import Schedule
from repro.profiling.latency import CostTable
from repro.sim.engine import Engine, Resource
from repro.utils.validation import require_positive

__all__ = ["MultiDeviceResult", "simulate_shared_uplink", "fair_share_tables"]


@dataclass
class MultiDeviceResult:
    """Outcome of a shared-uplink simulation."""

    makespan: float
    per_device_makespan: list[float]
    uplink_utilization: float

    @property
    def num_devices(self) -> int:
        return len(self.per_device_makespan)


def simulate_shared_uplink(schedules: list[Schedule]) -> MultiDeviceResult:
    """Run one schedule per device; uploads share a single FIFO channel.

    Each device executes its jobs in schedule order on its own CPU; an
    upload is enqueued on the shared link the moment its computation
    finishes. Communication stage lengths in the plans must already be
    priced at the *full* channel rate — the FIFO holds the link for that
    long per transfer (TDMA-style sharing, no rate splitting).
    """
    if not schedules:
        raise ValueError("need at least one device schedule")
    engine = Engine()
    uplink = Resource(engine, "shared-uplink")
    completions: list[list[float]] = [[] for _ in schedules]

    for device_index, schedule in enumerate(schedules):
        cpu = Resource(engine, f"cpu{device_index}")

        def submit(index: int, device: int = device_index, cpu_res: Resource = cpu,
                   sched: Schedule = schedule) -> None:
            plan = sched.jobs[index]

            def after_compute(start: float, end: float) -> None:
                uplink.acquire(
                    f"d{device}/job{plan.job_id}", plan.comm_time, after_comm
                )

            def after_comm(start: float, end: float) -> None:
                completions[device].append(end)

            cpu_res.acquire(
                f"d{device}/job{plan.job_id}/compute", plan.compute_time, after_compute
            )

        for index in range(len(schedule.jobs)):
            submit(index)

    makespan = engine.run()
    per_device = [max(c) if c else 0.0 for c in completions]
    return MultiDeviceResult(
        makespan=makespan,
        per_device_makespan=per_device,
        uplink_utilization=uplink.utilization(makespan) if makespan > 0 else 0.0,
    )


def fair_share_tables(table: CostTable, devices: int) -> CostTable:
    """Re-price a cost table at the channel's per-device fair share.

    Upload times scale by the device count (a k-way shared channel
    serves each device at ~1/k the rate over time); computation is
    unaffected. Planning each device's JPS on this table anticipates
    contention instead of discovering it at run time.
    """
    require_positive(devices, "devices")
    return table.with_channel_scaled(float(devices))


def plan_contention_aware(
    table: CostTable, devices: int, n_per_device: int
) -> list[Schedule]:
    """One JPS schedule per device, planned against the fair-share table.

    The returned plans carry *full-rate* communication times (what one
    transfer actually occupies on the shared link); only the cut
    *choice* used the fair-share prices.
    """
    shared_view = fair_share_tables(table, devices)
    reference = jps_line(shared_view, n_per_device, split="pair")
    counts = reference.cut_histogram()
    schedules = []
    for _ in range(devices):
        from repro.core.partition import TwoTypeSplit, plans_for_split

        positions = sorted(counts)
        if len(positions) == 1:
            split = TwoTypeSplit(positions[0], positions[0], 0, n_per_device, 0.0)
        else:
            split = TwoTypeSplit(
                positions[0], positions[1], counts[positions[0]],
                counts[positions[1]], 0.0,
            )
        from repro.core.scheduling import schedule_jobs

        schedules.append(schedule_jobs(plans_for_split(table, split), method="JPS-fair"))
    return schedules
