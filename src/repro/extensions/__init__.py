"""Extensions beyond the paper: 3-stage shop, heterogeneous jobs, refinement."""

from repro.extensions.flowshop3 import (
    flow_shop3_completion_times,
    flow_shop3_makespan,
    johnson3_order,
    johnson_dominance_holds,
    schedule_jobs_3stage,
    two_stage_approximation_gap,
)
from repro.extensions.heterogeneous import ModelJobs, jps_heterogeneous
from repro.extensions.memory import (
    feasible_positions,
    jps_memory_constrained,
    mobile_memory_bytes,
    restrict_table,
)
from repro.extensions.multidevice import (
    MultiDeviceResult,
    fair_share_tables,
    plan_contention_aware,
    simulate_shared_uplink,
)
from repro.extensions.online import (
    OnlineJpsScheduler,
    ReleasedJob,
    clairvoyant_makespan,
    flow_shop_makespan_with_releases,
    offline_lower_bound,
)
from repro.extensions.refine import refine_end_jobs

__all__ = [
    "ModelJobs",
    "MultiDeviceResult",
    "fair_share_tables",
    "feasible_positions",
    "jps_memory_constrained",
    "mobile_memory_bytes",
    "plan_contention_aware",
    "restrict_table",
    "simulate_shared_uplink",
    "OnlineJpsScheduler",
    "ReleasedJob",
    "clairvoyant_makespan",
    "flow_shop_makespan_with_releases",
    "offline_lower_bound",
    "flow_shop3_completion_times",
    "flow_shop3_makespan",
    "johnson3_order",
    "johnson_dominance_holds",
    "jps_heterogeneous",
    "refine_end_jobs",
    "schedule_jobs_3stage",
    "two_stage_approximation_gap",
]
