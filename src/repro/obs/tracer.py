"""Spans and instant events: the tracing half of :mod:`repro.obs`.

A :class:`Tracer` collects *spans* — named, attributed ``[start, end]``
intervals — and *instant events* (zero-duration markers such as a
gateway re-plan). Two usage modes coexist:

* **live timing** — ``with tracer.span("engine.plan", model="alexnet"):``
  stamps wall-clock times from a monotonic clock (normalized so the
  first reading of a tracer is ~0). Nesting is tracked through a
  contextvar, so the parent of a new span defaults to the innermost
  open one; passing ``parent=`` overrides it (explicit context
  propagation — no thread-locals required).
* **retro-recording** — ``tracer.record(name, start, end)`` appends a
  completed span with caller-supplied timestamps. This is how the
  discrete-event simulator and the serving gateway trace *virtual*
  time: stage windows are known exactly when a stage finishes, so they
  are recorded after the fact instead of timed.

Every span may carry a ``lane`` — a ``(process, track)`` label pair the
Chrome exporter (:mod:`repro.obs.chrome`) maps onto pid/tid rows, which
is what makes a pipeline trace render as the paper's Fig. 5-style
staircase in Perfetto.

:class:`NullTracer` is the disabled counterpart: same surface, no
recording, a shared no-op context manager — instrumented hot paths pay
roughly one attribute lookup and one call per span
(``benchmarks/bench_obs_overhead.py`` keeps that under 2% on a real
workload).
"""

from __future__ import annotations

import time
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

__all__ = ["Span", "InstantEvent", "Tracer", "NullTracer", "well_formed"]

#: Lane used when a span/event does not name one.
DEFAULT_LANE = ("repro", "main")


@dataclass
class Span:
    """One named interval with attributes and an optional parent."""

    name: str
    start: float
    end: float | None = None
    attributes: dict[str, Any] = field(default_factory=dict)
    span_id: int = 0
    parent_id: int | None = None
    lane: tuple[str, str] | None = None       # (process, track) for exporters

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValueError(f"span {self.name!r} is still open")
        return self.end - self.start


@dataclass(frozen=True)
class InstantEvent:
    """A zero-duration marker (e.g. a re-plan decision)."""

    name: str
    timestamp: float
    attributes: dict[str, Any] = field(default_factory=dict)
    lane: tuple[str, str] | None = None


class _SpanContext:
    """Context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_span", "_token")

    def __init__(self, tracer: Tracer, span: Span):
        self._tracer = tracer
        self._span = span
        self._token = None

    def __enter__(self) -> Span:
        self._token = self._tracer._current.set(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._current.reset(self._token)
        self._tracer.end_span(self._span)
        return False


class Tracer:
    """Collects spans and instant events; see the module docstring.

    ``clock`` is any zero-argument callable returning seconds; the
    default is ``time.perf_counter`` rebased so the tracer's first
    possible reading is 0 — that keeps wall-clocked spans on the same
    scale as virtual-time spans recorded from a simulation start.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        if clock is None:
            t0 = time.perf_counter()
            clock = lambda: time.perf_counter() - t0  # noqa: E731
        self._clock = clock
        self._next_id = 0
        self._open: dict[int, Span] = {}
        self.spans: list[Span] = []
        self.instants: list[InstantEvent] = []
        self._current: ContextVar[Span | None] = ContextVar("repro_obs_span", default=None)

    # ------------------------------------------------------------------
    # live spans
    # ------------------------------------------------------------------
    @property
    def current(self) -> Span | None:
        """The innermost open span entered via :meth:`span`."""
        return self._current.get()

    def start_span(
        self,
        name: str,
        *,
        parent: Span | None = None,
        lane: tuple[str, str] | None = None,
        **attributes: Any,
    ) -> Span:
        """Open a span now; pair with :meth:`end_span`.

        ``parent`` defaults to the current contextvar span, so spans
        started inside a ``with tracer.span(...)`` block nest under it
        even without explicit plumbing.
        """
        if parent is None:
            parent = self._current.get()
        span = Span(
            name=name,
            start=self._clock(),
            attributes=attributes,
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else None,
            lane=lane if lane is not None else (parent.lane if parent else None),
        )
        self._next_id += 1
        self._open[span.span_id] = span
        return span

    def end_span(self, span: Span) -> Span:
        """Close an open span at the current clock reading."""
        if span.span_id not in self._open:
            raise ValueError(f"span {span.name!r} is not open in this tracer")
        del self._open[span.span_id]
        span.end = max(self._clock(), span.start)
        self.spans.append(span)
        return span

    def span(
        self,
        name: str,
        *,
        parent: Span | None = None,
        lane: tuple[str, str] | None = None,
        **attributes: Any,
    ) -> _SpanContext:
        """``with tracer.span("name", k=v) as s:`` — timed, nested span."""
        return _SpanContext(
            self, self.start_span(name, parent=parent, lane=lane, **attributes)
        )

    # ------------------------------------------------------------------
    # retro-recorded (virtual-time) spans and markers
    # ------------------------------------------------------------------
    def record(
        self,
        name: str,
        start: float,
        end: float,
        *,
        parent: Span | None = None,
        lane: tuple[str, str] | None = None,
        **attributes: Any,
    ) -> Span:
        """Append a completed span with explicit timestamps."""
        if end < start:
            raise ValueError(f"span {name!r}: end {end} before start {start}")
        span = Span(
            name=name,
            start=start,
            end=end,
            attributes=attributes,
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else None,
            lane=lane,
        )
        self._next_id += 1
        self.spans.append(span)
        return span

    def instant(
        self,
        name: str,
        *,
        timestamp: float | None = None,
        lane: tuple[str, str] | None = None,
        **attributes: Any,
    ) -> InstantEvent:
        """Append an instant event (now, unless ``timestamp`` is given)."""
        event = InstantEvent(
            name=name,
            timestamp=self._clock() if timestamp is None else timestamp,
            attributes=attributes,
            lane=lane,
        )
        self.instants.append(event)
        return event

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def open_spans(self) -> int:
        return len(self._open)

    def chrome_trace(self) -> list[dict]:
        """This tracer's finished spans/instants as Chrome trace events."""
        from repro.obs.chrome import chrome_trace_events

        return chrome_trace_events(self.spans, self.instants)


class _NullSpanContext:
    """Shared no-op ``with`` target for the disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> Span:
        return _NULL_SPAN

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = Span(name="null", start=0.0, end=0.0, span_id=-1)
_NULL_CONTEXT = _NullSpanContext()


class NullTracer:
    """Disabled tracer: same surface as :class:`Tracer`, records nothing.

    Every method returns a shared dummy object, so instrumentation sites
    need no ``if tracer is not None`` guards and the disabled hot path
    costs one method call per span.
    """

    enabled = False
    spans: tuple[Span, ...] = ()
    instants: tuple[InstantEvent, ...] = ()

    @property
    def current(self) -> Span | None:
        return None

    @property
    def open_spans(self) -> int:
        return 0

    def span(self, name: str, **kwargs: Any) -> _NullSpanContext:
        return _NULL_CONTEXT

    def start_span(self, name: str, **kwargs: Any) -> Span:
        return _NULL_SPAN

    def end_span(self, span: Span) -> Span:
        return span

    def record(self, name: str, start: float, end: float, **kwargs: Any) -> Span:
        return _NULL_SPAN

    def instant(self, name: str, **kwargs: Any) -> None:
        return None

    def chrome_trace(self) -> list[dict]:
        return []


def _by_id(spans: Iterator[Span]) -> dict[int, Span]:
    return {span.span_id: span for span in spans}


def well_formed(spans: list[Span], tolerance: float = 1e-9) -> list[str]:
    """Structural problems of a finished span set (empty list == OK).

    Checks the invariants the exporters rely on: unique ids, closed
    spans, non-negative durations, parents that exist and temporally
    contain their children.
    """
    problems: list[str] = []
    seen: set[int] = set()
    for span in spans:
        if span.span_id in seen:
            problems.append(f"duplicate span id {span.span_id} ({span.name!r})")
        seen.add(span.span_id)
        if span.end is None:
            problems.append(f"span {span.name!r} never closed")
        elif span.end < span.start - tolerance:
            problems.append(f"span {span.name!r} ends before it starts")
    index = _by_id(iter(spans))
    for span in spans:
        if span.parent_id is None or span.end is None:
            continue
        parent = index.get(span.parent_id)
        if parent is None:
            problems.append(f"span {span.name!r} has unknown parent {span.parent_id}")
            continue
        if parent.end is None:
            continue  # already reported above
        if span.start < parent.start - tolerance or span.end > parent.end + tolerance:
            problems.append(
                f"span {span.name!r} [{span.start}, {span.end}] escapes parent "
                f"{parent.name!r} [{parent.start}, {parent.end}]"
            )
    return problems
