"""repro.obs — the unified tracing & telemetry layer.

One dependency-free substrate every layer instruments against:

* :mod:`~repro.obs.tracer` — nested spans with attributes and explicit
  context propagation (:class:`Tracer`), plus a near-zero-cost
  :class:`NullTracer` for disabled hot paths;
* :mod:`~repro.obs.metrics` — monotone :class:`Counter`\\ s (optionally
  labeled), :class:`Gauge`\\ s, DDSketch-style
  :class:`StreamingHistogram`\\ s with mergeable buckets, all behind a
  :class:`MetricsRegistry` snapshot;
* :mod:`~repro.obs.chrome` — spans → Chrome trace-event JSON, loadable
  in Perfetto / ``chrome://tracing`` (``repro trace <target>``);
* :mod:`~repro.obs.prometheus` — registry snapshot → Prometheus text
  exposition (plus a scraper for round-trip tests);
* :mod:`~repro.obs.timeseries` — windowed ring-buffer
  :class:`TimeSeries` over virtual time with mergeable histogram
  windows, behind a :class:`TelemetryHub` (``SystemReport.timeline``);
* :mod:`~repro.obs.slo` — declarative :class:`SloConfig` objectives
  with multi-window burn-rate alerting (:class:`SloBoard`,
  ``SystemReport.alerts``).

Instrumentation sites: :class:`~repro.engine.PlanningEngine` (plan and
structure/table-build spans, cache gauges via ``to_metrics``),
:mod:`repro.sim` (per-job per-stage spans derived from pipeline
traces; see :func:`repro.sim.trace.pipeline_spans`), the serving
:class:`~repro.serving.gateway.Gateway` (request lifecycle spans and
re-plan instant events), and the experiment harnesses (one span per
figure/campaign cell). See ``docs/observability.md``.
"""

from repro.obs.chrome import (
    chrome_trace_events,
    validate_chrome_events,
    write_chrome_trace,
)
from repro.obs.metrics import (
    SNAPSHOT_QUANTILES,
    Counter,
    Gauge,
    MetricsRegistry,
    StreamingHistogram,
)
from repro.obs.prometheus import (
    exposition_from_snapshot,
    parse_prometheus,
    to_prometheus,
)
from repro.obs.render import render_timeline, watch_table
from repro.obs.slo import (
    NULL_BOARD,
    NullSloBoard,
    SloBoard,
    SloConfig,
    SloMonitor,
    default_slos,
)
from repro.obs.timeseries import (
    NULL_HUB,
    NullTelemetryHub,
    TelemetryHub,
    TimeSeries,
)
from repro.obs.tracer import InstantEvent, NullTracer, Span, Tracer, well_formed

__all__ = [
    "Tracer",
    "NullTracer",
    "Span",
    "InstantEvent",
    "well_formed",
    "Counter",
    "Gauge",
    "StreamingHistogram",
    "MetricsRegistry",
    "SNAPSHOT_QUANTILES",
    "chrome_trace_events",
    "write_chrome_trace",
    "validate_chrome_events",
    "to_prometheus",
    "exposition_from_snapshot",
    "parse_prometheus",
    "TimeSeries",
    "TelemetryHub",
    "NullTelemetryHub",
    "NULL_HUB",
    "SloConfig",
    "SloMonitor",
    "SloBoard",
    "NullSloBoard",
    "NULL_BOARD",
    "default_slos",
    "render_timeline",
    "watch_table",
]
