"""Terminal renderers for the telemetry timeline.

``repro fleet --watch`` and ``repro report --timeline`` both read the
``SystemReport.timeline`` JSON produced by
:class:`~repro.obs.timeseries.TelemetryHub` — this module turns it into
a per-window table (:func:`watch_table`, the periodic view an operator
would tail) and ASCII rate/latency plots (:func:`render_timeline`,
reusing :func:`repro.experiments.ascii_plot.line_plot`). Labeled series
(``served{server="server0"}``) are aggregated per base name, so the
fleet view sums over servers and GPUs.
"""

from __future__ import annotations

from typing import Any, Mapping

__all__ = ["render_timeline", "watch_table"]

#: Counter series the default plot and table columns aggregate.
DEFAULT_SERIES = ("arrivals", "served", "degraded", "dropped")


def _base_name(key: str) -> str:
    return key.split("{", 1)[0]


def _counter_buckets(timeline: Mapping[str, Any], base: str) -> dict[float, float]:
    """Per-bucket counts of one base series, summed across label sets."""
    out: dict[float, float] = {}
    for key, series in timeline.get("series", {}).items():
        if _base_name(key) != base:
            continue
        for point in series["points"]:
            out[point["t"]] = out.get(point["t"], 0.0) + point["count"]
    return out


def _p95_buckets(timeline: Mapping[str, Any], base: str) -> dict[float, float]:
    """Per-bucket worst p95 of one histogram series across label sets."""
    out: dict[float, float] = {}
    for key, series in timeline.get("series", {}).items():
        if _base_name(key) != base or series.get("kind") != "histogram":
            continue
        for point in series["points"]:
            p95 = point.get("p95")
            if p95 is not None:
                out[point["t"]] = max(out.get(point["t"], 0.0), p95)
    return out


def _alerts_active_at(alerts: Mapping[str, Any] | None, t: float) -> int:
    if not alerts:
        return 0
    active = 0
    for block in alerts.get("slos", []):
        for alert in block.get("alerts", []):
            cleared = alert.get("cleared_at")
            if alert["fired_at"] <= t and (cleared is None or t < cleared):
                active += 1
    return active


def _time_grid(timeline: Mapping[str, Any], step: float) -> list[float]:
    ts = [
        point["t"]
        for series in timeline.get("series", {}).values()
        for point in series["points"]
    ]
    if not ts:
        return []
    lo = min(ts) - min(ts) % step
    hi = max(ts)
    grid = []
    t = lo
    while t <= hi + 1e-9:
        grid.append(round(t, 9))
        t += step
    return grid


def watch_table(
    timeline: Mapping[str, Any],
    alerts: Mapping[str, Any] | None = None,
    every: float = 1.0,
) -> str:
    """The ``repro fleet --watch`` periodic table, one row per window."""
    step = max(every, timeline.get("bucket_width", every) or every)
    grid = _time_grid(timeline, step)
    if not grid:
        return "(no telemetry samples)"
    counters = {base: _counter_buckets(timeline, base) for base in DEFAULT_SERIES}
    p95 = _p95_buckets(timeline, "latency")

    def window_sum(buckets: dict[float, float], t: float) -> float:
        return sum(v for bt, v in buckets.items() if t - 1e-9 <= bt < t + step - 1e-9)

    header = (
        f"{'t(s)':>7s} {'arrivals':>9s} {'served':>7s} {'degraded':>9s} "
        f"{'dropped':>8s} {'p95(s)':>8s} {'alerts':>7s}"
    )
    lines = [header]
    for t in grid:
        worst_p95 = max(
            (v for bt, v in p95.items() if t - 1e-9 <= bt < t + step - 1e-9),
            default=None,
        )
        active = _alerts_active_at(alerts, t + step / 2)
        lines.append(
            f"{t:>7.1f} {window_sum(counters['arrivals'], t):>9.0f} "
            f"{window_sum(counters['served'], t):>7.0f} "
            f"{window_sum(counters['degraded'], t):>9.0f} "
            f"{window_sum(counters['dropped'], t):>8.0f} "
            + (f"{worst_p95:>8.3f} " if worst_p95 is not None else f"{'-':>8s} ")
            + (f"{active:>7d}" if active else f"{'-':>7s}")
        )
    from repro.experiments.ascii_plot import sparkline

    for base in DEFAULT_SERIES:
        values = [window_sum(counters[base], t) for t in grid]
        if any(values):
            lines.append(f"{base:>9s} {sparkline(values)}")
    return "\n".join(lines)


def render_timeline(
    timeline: Mapping[str, Any],
    series: list[str] | None = None,
    width: int = 64,
    height: int = 12,
) -> str:
    """ASCII plots of the windowed series (``repro report --timeline``)."""
    from repro.experiments.ascii_plot import line_plot

    bucket = timeline.get("bucket_width") or 1.0
    wanted = list(series) if series else [
        base for base in DEFAULT_SERIES if _counter_buckets(timeline, base)
    ]
    per_base = {base: _counter_buckets(timeline, base) for base in wanted}
    per_base = {base: buckets for base, buckets in per_base.items() if buckets}
    if not per_base:
        return "(no telemetry series to plot)"
    xs = sorted({t for buckets in per_base.values() for t in buckets})
    rates = {
        base: [buckets.get(t, 0.0) / bucket for t in xs]
        for base, buckets in per_base.items()
    }
    blocks = [
        line_plot(
            xs,
            rates,
            width=width,
            height=height,
            title=f"windowed rates (req/s, {bucket:g}s buckets)",
            y_label="req/s",
        )
    ]
    p95 = _p95_buckets(timeline, "latency")
    if p95:
        lat_xs = sorted(p95)
        blocks.append(
            line_plot(
                lat_xs,
                {"p95 latency": [p95[t] for t in lat_xs]},
                width=width,
                height=height,
                title="windowed p95 completion latency (s)",
                y_label="s",
            )
        )
    return "\n\n".join(blocks)
