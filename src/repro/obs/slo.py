"""Declarative SLOs with multi-window burn-rate alerting.

An :class:`SloConfig` states an objective the fleet must hold *over a
window* — e.g. "at least 90% of requests meet their deadline over any
4-second window". Each outcome (a request served in/out of deadline, or
dropped) feeds an :class:`SloMonitor`, which keeps per-bucket good/bad
counts in one bounded ring (same bucket-aligned window semantics as
:class:`~repro.obs.timeseries.TimeSeries`) and evaluates the classic
SRE *burn rate* on every event:

``burn = (bad / (good + bad)) / (1 - target)``

i.e. how many times faster than budget the error budget is burning. An
alert **fires** when the burn rate exceeds ``burn_threshold`` over both
the long ``window`` and the short ``fast_window`` (the multi-window
rule: the long window proves it is real, the short window proves it is
*still happening*), and **clears** once the fast-window burn drops back
under the threshold. Evaluation is driven purely by outcome events on
the virtual clock — no timers are scheduled on the engine — so a run
replays to the identical alert list under the same seed, and the DES
event stream is byte-identical whether or not SLOs are configured.

Alerts surface three ways at once: ``slo/fire`` / ``slo/clear`` trace
instants on the ``("fleet", "slo")`` lane, ``slo_*`` counter/gauge
families in the fleet :class:`~repro.obs.metrics.MetricsRegistry`
(Prometheus-exposable), and the structured ``alerts`` section of
:class:`~repro.fleet.fleet.SystemReport`.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Any

from repro.utils.validation import require_positive

__all__ = [
    "SloConfig",
    "SloMonitor",
    "SloBoard",
    "NullSloBoard",
    "NULL_BOARD",
    "default_slos",
    "SLO_LANE",
]

#: Trace lane of SLO fire/clear instants.
SLO_LANE = ("fleet", "slo")


@dataclass(frozen=True)
class SloConfig:
    """One windowed objective + its burn-rate alert policy.

    ``target`` is the good-outcome fraction the objective demands (the
    error budget is ``1 - target``); ``window``/``fast_window`` are the
    long and short burn windows in virtual seconds; ``burn_threshold``
    is the burn-rate multiple that trips the alert on both windows
    simultaneously; ``min_events`` suppresses evaluation until the long
    window holds enough outcomes to mean anything; ``bucket_width`` is
    the ring-bucket granularity of the underlying counters.
    """

    name: str = "deadline-hit-rate"
    target: float = 0.9
    window: float = 4.0
    fast_window: float = 1.0
    burn_threshold: float = 1.0
    min_events: int = 8
    bucket_width: float = 0.25

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("SLO name must be non-empty")
        if not 0 < self.target < 1:
            raise ValueError(f"target must be in (0, 1), got {self.target}")
        require_positive(self.window, "window")
        require_positive(self.fast_window, "fast_window")
        if self.fast_window > self.window:
            raise ValueError(
                f"fast_window {self.fast_window} exceeds window {self.window}"
            )
        require_positive(self.burn_threshold, "burn_threshold")
        require_positive(self.min_events, "min_events")
        require_positive(self.bucket_width, "bucket_width")

    @property
    def budget(self) -> float:
        """The error budget: tolerable bad-outcome fraction."""
        return 1.0 - self.target

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "target": self.target,
            "window": self.window,
            "fast_window": self.fast_window,
            "burn_threshold": self.burn_threshold,
            "min_events": self.min_events,
            "bucket_width": self.bucket_width,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SloConfig":
        return cls(**data)


def default_slos() -> tuple[SloConfig, ...]:
    """The shipped objective: ≥90% deadline hits over any 4 s window."""
    return (SloConfig(),)


class SloMonitor:
    """Online burn-rate evaluation of one :class:`SloConfig`."""

    def __init__(self, config: SloConfig, tracer=None, metrics=None) -> None:
        self.config = config
        self.tracer = tracer
        self.metrics = metrics
        self._width = config.bucket_width
        self._long_buckets = max(1, math.ceil(config.window / self._width))
        self._fast_buckets = max(1, math.ceil(config.fast_window / self._width))
        self._capacity = max(64, 4 * self._long_buckets)
        #: Bounded ring of per-bucket ``[index, good, bad]`` entries in
        #: ascending index order. The engine clock is monotone, so the
        #: newest entry is almost always the write target and one short
        #: reversed pass covers both burn windows per evaluation.
        self._buckets: deque[list] = deque()
        self.active = False
        #: Every fire (and its clear, once seen), in firing order.
        self.alerts: list[dict[str, Any]] = []

    # ------------------------------------------------------------------
    def _observe(self, t: float, good: bool) -> None:
        index = math.floor(t / self._width)
        buckets = self._buckets
        slot = 1 if good else 2
        if not buckets or index > buckets[-1][0]:
            entry = [index, 0, 0]
            entry[slot] = 1
            buckets.append(entry)
            floor_index = index - self._capacity + 1
            while buckets[0][0] < floor_index:
                buckets.popleft()
            return
        if index <= buckets[-1][0] - self._capacity:
            return  # older than the ring: no in-window query can see it
        # out-of-order arrival onto a retained bucket (rare)
        position = len(buckets) - 1
        while position >= 0 and buckets[position][0] > index:
            position -= 1
        if position >= 0 and buckets[position][0] == index:
            buckets[position][slot] += 1
        else:
            entry = [index, 0, 0]
            entry[slot] = 1
            buckets.insert(position + 1, entry)

    def _window_counts(self, lo: int, hi: int) -> tuple[int, int]:
        good = bad = 0
        for entry in reversed(self._buckets):
            index = entry[0]
            if index > hi:
                continue
            if index < lo:
                break
            good += entry[1]
            bad += entry[2]
        return good, bad

    def burn_rate(self, window: float, now: float) -> tuple[float, int]:
        """(burn multiple, outcome count) over the trailing window."""
        require_positive(window, "window")
        hi = math.floor(now / self._width)
        lo = hi - max(1, math.ceil(window / self._width)) + 1
        good, bad = self._window_counts(lo, hi)
        events = good + bad
        if events == 0:
            return 0.0, 0
        return (bad / events) / self.config.budget, events

    def record(self, t: float, good: bool) -> None:
        """Feed one outcome at virtual time ``t`` and re-evaluate."""
        self._observe(t, good)
        self.evaluate(t)

    def evaluate(self, now: float) -> None:
        """Fire/clear against the multi-window burn rule at ``now``.

        One reversed pass over the ring computes both windows: the long
        window proves the burn is real, the fast window proves it is
        still happening.
        """
        config = self.config
        hi = math.floor(now / self._width)
        long_lo = hi - self._long_buckets + 1
        fast_lo = hi - self._fast_buckets + 1
        long_good = long_bad = fast_good = fast_bad = 0
        for entry in reversed(self._buckets):
            index = entry[0]
            if index > hi:
                continue
            if index < long_lo:
                break
            long_good += entry[1]
            long_bad += entry[2]
            if index >= fast_lo:
                fast_good += entry[1]
                fast_bad += entry[2]
        budget = config.budget
        events = long_good + long_bad
        burn_long = (long_bad / events) / budget if events else 0.0
        fast_events = fast_good + fast_bad
        burn_fast = (fast_bad / fast_events) / budget if fast_events else 0.0
        if not self.active:
            if (
                events >= config.min_events
                and burn_long >= config.burn_threshold
                and burn_fast >= config.burn_threshold
            ):
                self.active = True
                self.alerts.append(
                    {
                        "slo": config.name,
                        "fired_at": now,
                        "cleared_at": None,
                        "burn_rate": burn_long,
                        "burn_rate_fast": burn_fast,
                        "events": events,
                        "target": config.target,
                        "window": config.window,
                    }
                )
                if self.tracer is not None:
                    self.tracer.instant(
                        "slo/fire",
                        timestamp=now,
                        lane=SLO_LANE,
                        slo=config.name,
                        burn_rate=burn_long,
                        burn_rate_fast=burn_fast,
                        events=events,
                    )
                if self.metrics is not None:
                    self.metrics.counter(
                        "slo_alerts_fired", slo=config.name
                    ).increment()
        elif burn_fast < config.burn_threshold:
            self.active = False
            alert = self.alerts[-1]
            alert["cleared_at"] = now
            alert["duration"] = now - alert["fired_at"]
            if self.tracer is not None:
                self.tracer.instant(
                    "slo/clear",
                    timestamp=now,
                    lane=SLO_LANE,
                    slo=config.name,
                    burn_rate_fast=burn_fast,
                    duration=alert["duration"],
                )
            if self.metrics is not None:
                self.metrics.counter(
                    "slo_alerts_cleared", slo=config.name
                ).increment()

    def finalize(self, now: float) -> None:
        """End-of-run evaluation + gauge publication (no forced clear)."""
        self.evaluate(now)
        if self.metrics is not None:
            burn_long, _ = self.burn_rate(self.config.window, now)
            burn_fast, _ = self.burn_rate(self.config.fast_window, now)
            self.metrics.gauge(
                "slo_burn_rate", slo=self.config.name, window="long"
            ).set(burn_long)
            self.metrics.gauge(
                "slo_burn_rate", slo=self.config.name, window="fast"
            ).set(burn_fast)
            self.metrics.gauge("slo_active", slo=self.config.name).set(
                1.0 if self.active else 0.0
            )

    def report(self) -> dict[str, Any]:
        return {
            "slo": self.config.as_dict(),
            "alerts": list(self.alerts),
            "fired": len(self.alerts),
            "cleared": sum(1 for a in self.alerts if a["cleared_at"] is not None),
            "active_at_end": self.active,
        }


class SloBoard:
    """All configured SLOs behind one outcome feed."""

    enabled = True

    def __init__(self, slos, tracer=None, metrics=None) -> None:
        self.monitors = [SloMonitor(slo, tracer=tracer, metrics=metrics) for slo in slos]

    def outcome(self, t: float, good: bool) -> None:
        """Fan one request outcome out to every monitor."""
        for monitor in self.monitors:
            monitor.record(t, good)

    def finalize(self, t: float) -> None:
        for monitor in self.monitors:
            monitor.finalize(t)

    @property
    def fired(self) -> int:
        return sum(len(m.alerts) for m in self.monitors)

    @property
    def cleared(self) -> int:
        return sum(
            1
            for m in self.monitors
            for a in m.alerts
            if a["cleared_at"] is not None
        )

    def report(self) -> dict[str, Any]:
        """The ``SystemReport.alerts`` body."""
        return {
            "slos": [m.report() for m in self.monitors],
            "fired": self.fired,
            "cleared": self.cleared,
            "active_at_end": sum(1 for m in self.monitors if m.active),
        }


class NullSloBoard:
    """Disabled board: same surface, evaluates nothing."""

    enabled = False
    monitors: tuple = ()
    fired = 0
    cleared = 0

    def outcome(self, t: float, good: bool) -> None:
        return None

    def finalize(self, t: float) -> None:
        return None

    def report(self) -> dict[str, Any]:
        return {}


#: Shared disabled board, mirroring :data:`repro.obs.timeseries.NULL_HUB`.
NULL_BOARD = NullSloBoard()
