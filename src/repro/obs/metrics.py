"""Metrics: counters, gauges, and streaming quantile histograms.

Promoted from ``repro.serving.metrics`` (which remains as a
backward-compatible shim) so every layer — the planning engine, the
simulator, the serving gateway, the experiment harnesses — shares one
metric substrate and one snapshot/exposition path.

The gateway runs for simulated hours and millions of requests, so the
latency distribution cannot be kept as raw samples. A
:class:`StreamingHistogram` buckets observations on a geometric grid
(DDSketch-style): every quantile estimate carries a bounded *relative*
error set by ``relative_accuracy``, memory is O(number of occupied
buckets), and merging two histograms (:meth:`StreamingHistogram.merge`)
is bucket-wise addition that preserves the error bound. Counters are
plain monotone integers, optionally labeled; gauges are set-anywhere
floats (cache sizes, hit rates). A :class:`MetricsRegistry` names all
three and snapshots the whole family into a JSON-safe dict — the wire
format of the gateway's metrics report (see ``docs/serving.md``) and
the input of the Prometheus exposition
(:mod:`repro.obs.prometheus`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.utils.validation import require_non_negative

__all__ = [
    "Counter",
    "Gauge",
    "StreamingHistogram",
    "MetricsRegistry",
    "SNAPSHOT_QUANTILES",
]

#: Quantiles every snapshot reports, in order.
SNAPSHOT_QUANTILES = (0.50, 0.95, 0.99)

#: Label pairs as stored on metrics: sorted, hashable.
Labels = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> Labels:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_key(name: str, labels: Labels) -> str:
    """Snapshot key: bare name, or Prometheus-style ``name{k="v"}``."""
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


@dataclass
class Counter:
    """A monotone event counter, optionally labeled."""

    name: str
    value: int = 0
    labels: Labels = ()

    def increment(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"{self.name}: counters only move forward, got {amount}")
        self.value += amount


@dataclass
class Gauge:
    """A point-in-time value (queue depth, cache entries, hit rate)."""

    name: str
    value: float = 0.0
    labels: Labels = ()

    def set(self, value: float) -> None:
        self.value = float(value)

    def increment(self, amount: float = 1.0) -> None:
        self.value += amount

    def decrement(self, amount: float = 1.0) -> None:
        self.value -= amount


class StreamingHistogram:
    """Log-bucketed histogram with relative-error quantile estimates.

    A non-zero observation ``v`` lands in bucket ``ceil(log_gamma v)``
    with ``gamma = (1 + a) / (1 - a)``; the bucket's representative
    value ``2 * gamma^i / (gamma + 1)`` (the geometric midpoint) is then
    within a factor ``(1 ± a)`` of every value the bucket can hold, so
    ``quantile()`` is accurate to relative error ``a``. Zeros get their
    own bucket (latencies of dropped-at-admission work, empty queues).
    """

    def __init__(self, relative_accuracy: float = 0.01):
        if not 0 < relative_accuracy < 1:
            raise ValueError(
                f"relative_accuracy must be in (0, 1), got {relative_accuracy}"
            )
        self.relative_accuracy = relative_accuracy
        self._gamma = (1 + relative_accuracy) / (1 - relative_accuracy)
        self._log_gamma = math.log(self._gamma)
        self._buckets: dict[int, int] = {}
        self._zeros = 0
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        require_non_negative(value, "value")
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        if value == 0:
            self._zeros += 1
            return
        index = math.ceil(math.log(value) / self._log_gamma)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    def merge(self, other: StreamingHistogram) -> StreamingHistogram:
        """Fold ``other`` into this histogram (bucket-wise addition).

        Both histograms must share the same ``relative_accuracy``:
        identical grids mean a bucket index denotes the same value range
        on both sides, so the merged estimates keep the same relative
        error bound as if every observation had landed here directly.
        Returns ``self`` for chaining; ``other`` is left untouched.
        """
        if not math.isclose(self._gamma, other._gamma):
            raise ValueError(
                "cannot merge histograms with different relative_accuracy "
                f"({self.relative_accuracy} vs {other.relative_accuracy})"
            )
        for index, count in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + count
        self._zeros += other._zeros
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The q-quantile estimate (exact for min/max, else ±accuracy)."""
        if not 0 <= q <= 1:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        if q == 0:
            return self.min
        if q == 1:
            return self.max
        rank = q * (self.count - 1)
        seen = self._zeros
        if rank < seen:
            return 0.0
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if rank < seen:
                estimate = 2 * self._gamma**index / (self._gamma + 1)
                return min(max(estimate, self.min), self.max)
        return self.max

    def as_dict(self) -> dict[str, float]:
        """JSON-safe summary: count, sum, extremes, p50/p95/p99."""
        summary: dict[str, float] = {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }
        for q in SNAPSHOT_QUANTILES:
            summary[f"p{round(q * 100):02d}"] = self.quantile(q)
        return summary


@dataclass
class MetricsRegistry:
    """Named counters, gauges, and histograms behind one snapshot call.

    ``counter``/``gauge`` accept keyword labels; each distinct label set
    is its own time series, rendered in the snapshot under a
    Prometheus-style ``name{k="v"}`` key (bare names stay bare, keeping
    the historical wire format for unlabeled series).
    """

    relative_accuracy: float = 0.01
    _counters: dict[tuple[str, Labels], Counter] = field(default_factory=dict)
    _gauges: dict[tuple[str, Labels], Gauge] = field(default_factory=dict)
    _histograms: dict[str, StreamingHistogram] = field(default_factory=dict)

    def counter(self, name: str, **labels: str) -> Counter:
        key = (name, _label_key(labels))
        if key not in self._counters:
            self._counters[key] = Counter(name, labels=key[1])
        return self._counters[key]

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = (name, _label_key(labels))
        if key not in self._gauges:
            self._gauges[key] = Gauge(name, labels=key[1])
        return self._gauges[key]

    def histogram(self, name: str) -> StreamingHistogram:
        if name not in self._histograms:
            self._histograms[name] = StreamingHistogram(self.relative_accuracy)
        return self._histograms[name]

    def snapshot(self) -> dict[str, dict]:
        """Plain-dict view of every metric, stable key order."""
        counters = {
            _render_key(name, labels): metric.value
            for (name, labels), metric in self._counters.items()
        }
        gauges = {
            _render_key(name, labels): metric.value
            for (name, labels), metric in self._gauges.items()
        }
        return {
            "counters": {key: counters[key] for key in sorted(counters)},
            "gauges": {key: gauges[key] for key in sorted(gauges)},
            "histograms": {
                name: self._histograms[name].as_dict()
                for name in sorted(self._histograms)
            },
        }
