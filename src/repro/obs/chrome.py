"""Chrome trace-event export: spans → a Perfetto-loadable JSON array.

The *Trace Event Format* (the JSON array variant consumed by
``chrome://tracing`` and https://ui.perfetto.dev) models a trace as a
flat list of events; ``"X"`` (complete) events carry ``ts``/``dur`` in
**microseconds** and are grouped into rows by integer ``pid``/``tid``.
We map a span's ``lane`` — a ``(process, track)`` label pair — onto
those ids and emit ``"M"`` (metadata) events naming them, so a pipeline
trace opens with one process group per job and one track per stage
(mobile compute / uplink / cloud), i.e. the paper's Fig. 5 staircase.

:func:`validate_chrome_events` is the schema check the CI workflow runs
against the exported artifact: an array of objects, every event with
``ph``/``ts``/``pid``/``tid``, complete events with a non-negative
``dur``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.obs.tracer import DEFAULT_LANE, InstantEvent, Span

__all__ = ["chrome_trace_events", "write_chrome_trace", "validate_chrome_events"]

#: Trace-event timestamps are microseconds; spans carry seconds.
MICROSECONDS = 1e6

#: Event phases the validator accepts (the subset we emit).
KNOWN_PHASES = ("X", "i", "I", "M", "B", "E")


class _LaneTable:
    """First-seen-order assignment of (process, track) labels to ids."""

    def __init__(self) -> None:
        self._pids: dict[str, int] = {}
        self._tids: dict[tuple[str, str], int] = {}
        self._tracks_per_pid: dict[str, int] = {}
        self.metadata: list[dict] = []

    def ids(self, lane: tuple[str, str] | None) -> tuple[int, int]:
        process, track = lane or DEFAULT_LANE
        if process not in self._pids:
            self._pids[process] = len(self._pids) + 1
            self.metadata.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": self._pids[process],
                    "tid": 0,
                    "ts": 0,
                    "args": {"name": process},
                }
            )
        pid = self._pids[process]
        key = (process, track)
        if key not in self._tids:
            self._tracks_per_pid[process] = self._tracks_per_pid.get(process, 0) + 1
            self._tids[key] = self._tracks_per_pid[process]
            self.metadata.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": self._tids[key],
                    "ts": 0,
                    "args": {"name": track},
                }
            )
        return pid, self._tids[key]


def chrome_trace_events(
    spans: Iterable[Span], instants: Iterable[InstantEvent] = ()
) -> list[dict]:
    """Finished spans + instant events as a Chrome trace-event array.

    Spans still open (``end is None``) are skipped — export after the
    run, or close them first. The returned list is JSON-ready: metadata
    events first, then timeline events in timestamp order.
    """
    lanes = _LaneTable()
    events: list[dict] = []
    for span in spans:
        if span.end is None:
            continue
        pid, tid = lanes.ids(span.lane)
        event = {
            "ph": "X",
            "name": span.name,
            "cat": "span",
            "ts": span.start * MICROSECONDS,
            "dur": (span.end - span.start) * MICROSECONDS,
            "pid": pid,
            "tid": tid,
        }
        if span.attributes:
            event["args"] = dict(span.attributes)
        events.append(event)
    for instant in instants:
        pid, tid = lanes.ids(instant.lane)
        event = {
            "ph": "i",
            "name": instant.name,
            "cat": "event",
            "ts": instant.timestamp * MICROSECONDS,
            "pid": pid,
            "tid": tid,
            "s": "t",                 # thread-scoped marker
        }
        if instant.attributes:
            event["args"] = dict(instant.attributes)
        events.append(event)
    events.sort(key=lambda e: (e["ts"], e["pid"], e["tid"]))
    return lanes.metadata + events


def write_chrome_trace(
    path: str | Path,
    spans: Iterable[Span],
    instants: Iterable[InstantEvent] = (),
) -> Path:
    """Export to ``path`` as the JSON-array trace format; returns the path."""
    target = Path(path)
    events = chrome_trace_events(spans, instants)
    validate_chrome_events(events)
    target.write_text(json.dumps(events, indent=1) + "\n")
    return target


def validate_chrome_events(events: Sequence[dict]) -> int:
    """Check ``events`` against the trace-event schema; returns the count.

    Raises :class:`ValueError` on the first violation — this is the
    gate CI runs on the exported ``trace.json`` artifact.
    """
    if not isinstance(events, (list, tuple)):
        raise ValueError(f"trace must be an array of events, got {type(events).__name__}")
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event {index} is not an object")
        for key in ("ph", "ts", "pid", "tid"):
            if key not in event:
                raise ValueError(f"event {index} ({event.get('name')!r}) misses {key!r}")
        if event["ph"] not in KNOWN_PHASES:
            raise ValueError(f"event {index} has unknown phase {event['ph']!r}")
        if not isinstance(event["ts"], (int, float)):
            raise ValueError(f"event {index}: ts must be a number")
        if event["ph"] == "X":
            if "dur" not in event or not isinstance(event["dur"], (int, float)):
                raise ValueError(f"event {index}: complete event without numeric dur")
            if event["dur"] < 0:
                raise ValueError(f"event {index}: negative duration {event['dur']}")
        if event["ph"] != "M" and not isinstance(event.get("name"), str):
            raise ValueError(f"event {index}: missing name")
    return len(events)
