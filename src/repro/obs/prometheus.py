"""Prometheus text exposition of a :class:`~repro.obs.metrics.MetricsRegistry`.

Renders the registry snapshot in the Prometheus *text exposition
format* (version 0.0.4: ``# TYPE`` comments plus ``name{labels} value``
sample lines), which any scraper — or the bundled
:func:`parse_prometheus` — can read back.

Naming conventions (see ``docs/observability.md``):

* every family is prefixed with a namespace (default ``repro``) and
  sanitized to ``[a-zA-Z_:][a-zA-Z0-9_:]*``;
* counters follow the ``_total`` suffix convention
  (``repro_served_total``);
* gauges are emitted verbatim (``repro_engine_cache_hits``);
* streaming histograms are exposed as *summaries*: one
  ``{quantile="0.5|0.95|0.99"}`` sample per snapshot quantile plus
  ``_sum`` and ``_count`` — the exact shape Prometheus expects from a
  client-side quantile sketch.

The exposition can also be built from an already-snapshotted dict
(:func:`exposition_from_snapshot`), so a saved gateway JSON report
re-exposes without the live registry.
"""

from __future__ import annotations

import re
from typing import Mapping

from repro.obs.metrics import SNAPSHOT_QUANTILES, MetricsRegistry

__all__ = ["to_prometheus", "exposition_from_snapshot", "parse_prometheus"]

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")

#: Sample-line shape: name, optional {labels}, value.
_SAMPLE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)$")


def _sanitize(name: str) -> str:
    cleaned = _NAME_OK.sub("_", name)
    if cleaned[:1].isdigit():
        cleaned = f"_{cleaned}"
    return cleaned


def _split_key(key: str) -> tuple[str, str]:
    """A snapshot key into (bare name, label suffix incl. braces)."""
    if "{" in key:
        name, _, rest = key.partition("{")
        return name, "{" + rest
    return key, ""


def _format(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(float(value)) if isinstance(value, float) else str(value)


def exposition_from_snapshot(
    snapshot: Mapping[str, Mapping], namespace: str = "repro"
) -> str:
    """Render a registry snapshot (or any dict shaped like one).

    Reads the ``counters`` / ``gauges`` / ``histograms`` keys and
    ignores everything else, so a full gateway report dict works as
    input directly.
    """
    lines: list[str] = []
    for kind, suffix, prom_type in (
        ("counters", "_total", "counter"),
        ("gauges", "", "gauge"),
    ):
        families: dict[str, list[str]] = {}
        for key in sorted(snapshot.get(kind, {})):
            name, labels = _split_key(key)
            family = f"{namespace}_{_sanitize(name)}{suffix}"
            families.setdefault(family, []).append(
                f"{family}{labels} {_format(snapshot[kind][key])}"
            )
        for family in sorted(families):
            lines.append(f"# TYPE {family} {prom_type}")
            lines.extend(families[family])
    for key in sorted(snapshot.get("histograms", {})):
        family = f"{namespace}_{_sanitize(key)}"
        summary = snapshot["histograms"][key]
        lines.append(f"# TYPE {family} summary")
        for q in SNAPSHOT_QUANTILES:
            sample = summary[f"p{round(q * 100):02d}"]
            lines.append(f'{family}{{quantile="{q:g}"}} {_format(sample)}')
        lines.append(f"{family}_sum {_format(summary['sum'])}")
        lines.append(f"{family}_count {_format(summary['count'])}")
    return "\n".join(lines) + "\n" if lines else ""


def to_prometheus(registry: MetricsRegistry, namespace: str = "repro") -> str:
    """The live registry's exposition (snapshot + render)."""
    return exposition_from_snapshot(registry.snapshot(), namespace=namespace)


def parse_prometheus(text: str) -> dict[str, float]:
    """Scrape an exposition back into ``{sample_key: value}``.

    The sample key is the line's name plus its literal label part
    (``repro_latency{quantile="0.95"}``), which makes round-trip tests
    a dict comparison. ``# TYPE``/``# HELP`` comments and blank lines
    are skipped; malformed sample lines raise :class:`ValueError`.
    """
    samples: dict[str, float] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: not a prometheus sample: {raw!r}")
        name, labels, value = match.groups()
        key = f"{name}{labels or ''}"
        if key in samples:
            raise ValueError(f"line {lineno}: duplicate sample {key!r}")
        samples[key] = float(value.replace("+Inf", "inf").replace("-Inf", "-inf"))
    return samples
