"""Windowed time-series over virtual time: the fleet's live signal.

Whole-run aggregates (:mod:`repro.obs.metrics`) answer "how did the run
go"; a :class:`TimeSeries` answers "when did it go wrong". Samples land
in fixed-width *buckets* keyed on virtual time (bucket ``i`` covers
``[i * bucket_width, (i + 1) * bucket_width)``); a bounded ring of the
most recent ``capacity`` buckets is retained, older buckets are evicted.
Sliding-window queries (:meth:`~TimeSeries.count`,
:meth:`~TimeSeries.rate`, :meth:`~TimeSeries.mean`,
:meth:`~TimeSeries.quantile`) aggregate the last ``ceil(window /
bucket_width)`` buckets, so a window never sees a partially evicted
bucket as long as ``window <= capacity * bucket_width`` — the invariant
the property suite locks.

Histogram-kind series keep one
:class:`~repro.obs.metrics.StreamingHistogram` per bucket *and* one for
the whole run. Because DDSketch merge is bucket-wise addition on a
shared grid, merging any partition of the per-bucket histograms
reproduces the whole-run histogram exactly (same sketch buckets, count,
min/max — the second property-suite lock), which is what makes windowed
p50/p95/p99 trustworthy.

A :class:`TelemetryHub` names many series (with Prometheus-style
labels, same rendering as :class:`~repro.obs.metrics.MetricsRegistry`)
and serializes them all into the ``SystemReport.timeline`` JSON.
:class:`NullTelemetryHub` is the disabled twin — same surface, records
nothing — so publish sites stay unconditional and the disabled hot path
pays one attribute check per site (the :class:`~repro.obs.tracer.NullTracer`
pattern).
"""

from __future__ import annotations

import math
from typing import Any

from repro.obs.metrics import (
    SNAPSHOT_QUANTILES,
    StreamingHistogram,
    _label_key,
    _render_key,
)
from repro.utils.validation import require_positive

__all__ = [
    "TimeSeries",
    "TelemetryHub",
    "NullTelemetryHub",
    "NULL_HUB",
    "SERIES_KINDS",
]

#: What a series aggregates per bucket: monotone event counts, sampled
#: point-in-time values, or full value distributions.
SERIES_KINDS = ("counter", "gauge", "histogram")


class _Bucket:
    """One time bucket's aggregate: count/sum/extremes (+ sketch)."""

    __slots__ = ("count", "total", "min", "max", "last", "histogram")

    def __init__(self, histogram: StreamingHistogram | None) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.last = 0.0
        self.histogram = histogram

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        self.last = value
        if self.histogram is not None:
            self.histogram.observe(value)


class TimeSeries:
    """A ring buffer of fixed-width virtual-time buckets.

    ``kind`` selects what each bucket keeps: ``counter`` and ``gauge``
    store count/sum/extremes/last, ``histogram`` adds a mergeable
    DDSketch per bucket plus a whole-run sketch. Out-of-order samples
    are accepted as long as their bucket is still retained; samples
    older than the ring are counted in :attr:`evicted_samples` and
    dropped (they can no longer influence any in-window query).
    """

    def __init__(
        self,
        name: str,
        bucket_width: float = 0.5,
        capacity: int = 4096,
        kind: str = "counter",
        relative_accuracy: float = 0.01,
    ) -> None:
        if kind not in SERIES_KINDS:
            raise ValueError(f"unknown series kind {kind!r} (use {SERIES_KINDS})")
        require_positive(bucket_width, "bucket_width")
        require_positive(capacity, "capacity")
        self.name = name
        self.bucket_width = bucket_width
        self.capacity = capacity
        self.kind = kind
        self.relative_accuracy = relative_accuracy
        self.count = 0                      # run-total samples observed
        self.total = 0.0
        self.evicted_samples = 0            # too-old samples dropped on arrival
        self.evicted_buckets = 0
        self._buckets: dict[int, _Bucket] = {}
        self._newest: int | None = None
        self._oldest: int | None = None
        # evicted buckets fold their sketches in here, so the whole-run
        # sketch stays reconstructable without a second observe() per
        # sample on the hot path (see :attr:`total_histogram`)
        self._evicted_histogram = (
            StreamingHistogram(relative_accuracy) if kind == "histogram" else None
        )

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def _bucket_index(self, t: float) -> int:
        return math.floor(t / self.bucket_width)

    def observe(self, t: float, value: float = 1.0) -> None:
        """Record one sample at virtual time ``t``."""
        index = self._bucket_index(t)
        if self._newest is not None and index <= self._newest - self.capacity:
            # older than the whole ring: nothing in-window can see it
            self.evicted_samples += 1
            return
        self.count += 1
        self.total += value
        bucket = self._buckets.get(index)
        if bucket is None:
            bucket = _Bucket(
                StreamingHistogram(self.relative_accuracy)
                if self.kind == "histogram"
                else None
            )
            self._buckets[index] = bucket
            if self._oldest is None or index < self._oldest:
                self._oldest = index
        bucket.observe(value)
        if self._newest is None or index > self._newest:
            self._newest = index
            self._evict()

    def _evict(self) -> None:
        """Drop buckets that fell off the ring (newest - capacity back)."""
        assert self._newest is not None
        floor_index = self._newest - self.capacity + 1
        if self._oldest is None or self._oldest >= floor_index:
            return
        for index in range(self._oldest, floor_index):
            bucket = self._buckets.pop(index, None)
            if bucket is not None:
                self.evicted_buckets += 1
                if bucket.histogram is not None:
                    self._evicted_histogram.merge(bucket.histogram)
        self._oldest = min(self._buckets) if self._buckets else None

    # ------------------------------------------------------------------
    # windowed reads (bucket-aligned: the last ceil(window/width) buckets
    # ending at the bucket containing ``now``)
    # ------------------------------------------------------------------
    def _window_range(self, window: float, now: float) -> range:
        require_positive(window, "window")
        if window > self.capacity * self.bucket_width:
            raise ValueError(
                f"window {window} exceeds ring span "
                f"{self.capacity * self.bucket_width} of series {self.name!r}"
            )
        hi = self._bucket_index(now)
        lo = hi - max(1, math.ceil(window / self.bucket_width)) + 1
        return range(lo, hi + 1)

    def _window_buckets(self, window: float, now: float) -> list[_Bucket]:
        return [
            bucket
            for index in self._window_range(window, now)
            if (bucket := self._buckets.get(index)) is not None
        ]

    def window_count(self, window: float, now: float) -> int:
        """Samples in the trailing ``window`` seconds before ``now``."""
        return sum(b.count for b in self._window_buckets(window, now))

    def window_total(self, window: float, now: float) -> float:
        return sum(b.total for b in self._window_buckets(window, now))

    def rate(self, window: float, now: float) -> float:
        """Samples per second over the trailing window."""
        return self.window_count(window, now) / window

    def mean(self, window: float, now: float) -> float:
        buckets = self._window_buckets(window, now)
        count = sum(b.count for b in buckets)
        return sum(b.total for b in buckets) / count if count else 0.0

    @property
    def total_histogram(self) -> StreamingHistogram | None:
        """The whole-run sketch (histogram-kind series only).

        Reconstructed on demand as the merge of every retained bucket
        plus the evicted-bucket fold — bucket-wise sketch addition makes
        this identical to having observed every sample into one sketch,
        while keeping the hot path at one sketch update per sample.
        """
        if self._evicted_histogram is None:
            return None
        merged = StreamingHistogram(self.relative_accuracy)
        merged.merge(self._evicted_histogram)
        for index in sorted(self._buckets):
            merged.merge(self._buckets[index].histogram)
        return merged

    def merged(self, window: float, now: float) -> StreamingHistogram:
        """The trailing window's sketch (histogram-kind series only)."""
        if self.kind != "histogram":
            raise ValueError(f"series {self.name!r} is {self.kind}, not histogram")
        merged = StreamingHistogram(self.relative_accuracy)
        for bucket in self._window_buckets(window, now):
            merged.merge(bucket.histogram)
        return merged

    def quantile(self, q: float, window: float, now: float) -> float:
        """Windowed quantile from the merged in-window sketches."""
        return self.merged(window, now).quantile(q)

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def points(self) -> list[dict[str, Any]]:
        """Every retained bucket as a JSON-safe point, oldest first."""
        out: list[dict[str, Any]] = []
        for index in sorted(self._buckets):
            bucket = self._buckets[index]
            point: dict[str, Any] = {
                "t": index * self.bucket_width,
                "count": bucket.count,
                "sum": bucket.total,
            }
            if self.kind == "gauge":
                point["last"] = bucket.last
                point["min"] = bucket.min
                point["max"] = bucket.max
            elif self.kind == "histogram":
                point["mean"] = bucket.total / bucket.count if bucket.count else 0.0
                point["max"] = bucket.max
                for q in SNAPSHOT_QUANTILES:
                    point[f"p{round(q * 100):02d}"] = bucket.histogram.quantile(q)
            out.append(point)
        return out

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "kind": self.kind,
            "bucket_width": self.bucket_width,
            "count": self.count,
            "sum": self.total,
            "points": self.points(),
        }
        if self.evicted_samples or self.evicted_buckets:
            out["evicted_samples"] = self.evicted_samples
            out["evicted_buckets"] = self.evicted_buckets
        return out


class TelemetryHub:
    """Named, labeled time-series behind one timeline snapshot.

    Publish sites call :meth:`record` (counter), :meth:`sample` (gauge),
    or :meth:`observe` (histogram) with an explicit virtual timestamp —
    the engine clock, never wall time, so timelines replay
    deterministically. Series are created on first touch; distinct label
    sets are distinct series under Prometheus-style ``name{k="v"}``
    keys, matching the metrics-snapshot wire format.
    """

    enabled = True

    def __init__(
        self,
        bucket_width: float = 0.5,
        capacity: int = 4096,
        relative_accuracy: float = 0.01,
    ) -> None:
        require_positive(bucket_width, "bucket_width")
        require_positive(capacity, "capacity")
        self.bucket_width = bucket_width
        self.capacity = capacity
        self.relative_accuracy = relative_accuracy
        self._series: dict[str, TimeSeries] = {}
        # publish fast path: (name, *sorted(label items)) -> series, so
        # steady-state record/sample/observe skip rendering the
        # Prometheus key string on every call
        self._handles: dict[tuple, TimeSeries] = {}

    def series(self, name: str, kind: str = "counter", /, **labels: str) -> TimeSeries:
        """Get-or-create the series for ``name`` + label set.

        ``name`` and ``kind`` are positional-only so label names never
        collide with them (a ``kind="drift"`` label is just a label).
        """
        handle = (name, *sorted(labels.items())) if labels else (name,)
        series = self._handles.get(handle)
        if series is None:
            key = _render_key(name, _label_key(labels))
            series = self._series.get(key)
            if series is None:
                series = TimeSeries(
                    key,
                    bucket_width=self.bucket_width,
                    capacity=self.capacity,
                    kind=kind,
                    relative_accuracy=self.relative_accuracy,
                )
                self._series[key] = series
            self._handles[handle] = series
        if series.kind != kind:
            raise ValueError(
                f"series {series.name!r} already registered as "
                f"{series.kind}, not {kind}"
            )
        return series

    def record(self, name: str, t: float, value: float = 1.0, /, **labels: str) -> None:
        """Count an event (counter-kind series)."""
        self.series(name, "counter", **labels).observe(t, value)

    def sample(self, name: str, t: float, value: float, /, **labels: str) -> None:
        """Sample a point-in-time value (gauge-kind series)."""
        self.series(name, "gauge", **labels).observe(t, value)

    def observe(self, name: str, t: float, value: float, /, **labels: str) -> None:
        """Observe a distribution value (histogram-kind series)."""
        self.series(name, "histogram", **labels).observe(t, value)

    def timeline(self) -> dict[str, Any]:
        """Every series, serialized — the ``SystemReport.timeline`` body."""
        return {
            "bucket_width": self.bucket_width,
            "series": {
                key: self._series[key].as_dict() for key in sorted(self._series)
            },
        }


class NullTelemetryHub:
    """Disabled hub: same surface, records nothing (NullTracer pattern)."""

    enabled = False
    bucket_width = 0.0

    def series(self, name: str, kind: str = "counter", /, **labels: str) -> None:
        return None

    def record(self, name: str, t: float, value: float = 1.0, /, **labels: str) -> None:
        return None

    def sample(self, name: str, t: float, value: float, /, **labels: str) -> None:
        return None

    def observe(self, name: str, t: float, value: float, /, **labels: str) -> None:
        return None

    def timeline(self) -> dict[str, Any]:
        return {}


#: Shared disabled hub — publish sites default to this, so the fault-free
#: path stays byte-identical to the pre-telemetry code.
NULL_HUB = NullTelemetryHub()
