"""Shared utilities: units, validation, deterministic RNG."""

from repro.utils import units, validation
from repro.utils.rng import DEFAULT_SEED, make_rng, spawn

__all__ = ["units", "validation", "DEFAULT_SEED", "make_rng", "spawn"]
