"""Deterministic random-number utilities.

Every stochastic component of the library (measurement noise in the
synthetic profiler, workload generators, brute-force tie-breaking) takes
an explicit ``numpy.random.Generator``. This module centralizes how those
generators are created so experiments are reproducible end to end: the
same seed yields the same profiles, the same schedules, and the same
reported tables.
"""

from __future__ import annotations

import zlib

import numpy as np

#: Seed used by experiment harnesses when the caller does not provide one.
DEFAULT_SEED = 20210809  # ICPP'21 conference start date


def make_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator`.

    Accepts ``None`` (use :data:`DEFAULT_SEED`), an integer seed, or an
    existing generator (returned unchanged, so callers can thread one
    generator through a whole experiment).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def stream_rng(seed: int, stream: str) -> np.random.Generator:
    """A named, independent random stream derived from ``(seed, stream)``.

    The fault-injection convention: every stochastic decision family gets
    its own stream keyed by a stable name (``"faults/corruption"``,
    ``"perturb/compute"``, ...), so draws in one family never shift
    another family's sequence — enabling a fault to be toggled without
    perturbing the rest of a seeded run, and making replays with the
    same seed bit-identical regardless of evaluation order. The stream
    name is folded into the seed material via CRC-32, which numpy's
    ``SeedSequence`` mixes with the base seed.
    """
    if not stream:
        raise ValueError("stream name must be non-empty")
    digest = zlib.crc32(stream.encode("utf-8"))
    return np.random.default_rng([seed, digest])


def spawn(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``count`` independent child generators.

    Used when an experiment fans out over (model, bandwidth) cells so that
    adding a cell does not perturb the random stream of the others.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(count)]
