"""Unit helpers and constants.

The whole library uses a single set of base units so that quantities can
be combined without conversion mistakes:

* time        — seconds (``float``)
* data size   — bytes (``int`` or ``float``)
* bandwidth   — bits per second
* computation — floating point operations (FLOPs; multiply-accumulate
  counted as 2 FLOPs)

The helpers below convert common paper units (Mbps, MB, ms, GFLOPS) into
base units. They are plain functions instead of a unit-object system: the
hot loops of the simulator and schedulers operate on raw floats and NumPy
arrays, and wrapping every scalar would dominate the runtime.
"""

from __future__ import annotations

#: Bits per byte; used when converting byte counts to transfer times.
BITS_PER_BYTE = 8

#: Bytes occupied by one float32 tensor element.
FLOAT32_BYTES = 4


def mbps(value: float) -> float:
    """Convert megabits/second to bits/second."""
    return value * 1e6


def kbps(value: float) -> float:
    """Convert kilobits/second to bits/second."""
    return value * 1e3


def gbps(value: float) -> float:
    """Convert gigabits/second to bits/second."""
    return value * 1e9


def mb(value: float) -> float:
    """Convert megabytes to bytes."""
    return value * 1e6


def kb(value: float) -> float:
    """Convert kilobytes to bytes."""
    return value * 1e3


def ms(value: float) -> float:
    """Convert milliseconds to seconds."""
    return value * 1e-3


def us(value: float) -> float:
    """Convert microseconds to seconds."""
    return value * 1e-6


def seconds_to_ms(value: float) -> float:
    """Convert seconds to milliseconds (for paper-style reporting)."""
    return value * 1e3


def gflops(value: float) -> float:
    """Convert GFLOP/s to FLOP/s."""
    return value * 1e9


def mflops(value: float) -> float:
    """Convert MFLOP/s to FLOP/s."""
    return value * 1e6


def transfer_time(num_bytes: float, bandwidth_bps: float) -> float:
    """Time in seconds to move ``num_bytes`` over a ``bandwidth_bps`` link.

    This is the raw serialization delay with no setup latency; see
    :class:`repro.net.channel.Channel` for the full model
    ``t = w0 + w1 * s / b`` used by the paper.
    """
    if bandwidth_bps <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
    if num_bytes < 0:
        raise ValueError(f"byte count must be non-negative, got {num_bytes}")
    return num_bytes * BITS_PER_BYTE / bandwidth_bps
