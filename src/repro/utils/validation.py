"""Small argument-validation helpers shared across the library.

These raise early with descriptive messages so that a bad cost table or a
malformed DAG fails at construction time rather than deep inside a
scheduling loop.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with ``message`` unless ``condition``."""
    if not condition:
        raise ValueError(message)


def require_positive(value: float, name: str) -> float:
    """Validate that ``value`` is strictly positive and return it."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def require_non_negative(value: float, name: str) -> float:
    """Validate that ``value`` is >= 0 and return it."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def require_in_range(value: float, lo: float, hi: float, name: str) -> float:
    """Validate ``lo <= value <= hi`` and return ``value``."""
    if not (lo <= value <= hi):
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value!r}")
    return value


def require_index(value: int, length: int, name: str) -> int:
    """Validate that ``value`` is a valid index into a length-``length`` sequence."""
    if not isinstance(value, (int,)):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if not (0 <= value < length):
        raise IndexError(f"{name} must be in [0, {length}), got {value}")
    return value


def require_same_length(a: Sequence, b: Sequence, name_a: str, name_b: str) -> None:
    """Validate that two sequences have matching lengths."""
    if len(a) != len(b):
        raise ValueError(
            f"{name_a} and {name_b} must have the same length, got {len(a)} and {len(b)}"
        )


def require_non_empty(seq: Iterable, name: str) -> None:
    """Validate that ``seq`` yields at least one element."""
    iterator = iter(seq)
    try:
        next(iterator)
    except StopIteration:
        raise ValueError(f"{name} must not be empty") from None


def require_sorted_non_decreasing(values: Sequence[float], name: str) -> None:
    """Validate that ``values`` is non-decreasing."""
    for i in range(1, len(values)):
        if values[i] < values[i - 1]:
            raise ValueError(
                f"{name} must be non-decreasing; violated at index {i}: "
                f"{values[i - 1]!r} > {values[i]!r}"
            )
