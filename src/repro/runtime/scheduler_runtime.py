"""The on-device scheduler of §6.1.

Before partitioning and scheduling, the mobile device must *estimate*
``f`` and ``g``. The paper's deployment does this with a pre-built
lookup table for computation times (local times are stable; the set of
common DNNs is small) and a linear regression ``t = w0 + w1·s/b`` for
communication (bandwidth varies). Both are loaded at scheduler start.

:class:`OnDeviceScheduler` reproduces that pipeline: ``calibrate`` runs
the synthetic profiler to build the estimators; ``plan`` produces a JPS
(or baseline) schedule from *estimated* costs and reports its own
decision latency — the quantity plotted in Fig. 12(d).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from repro.core.baselines import cloud_only, local_only, partition_only
from repro.core.plans import Schedule
from repro.engine import PlanningEngine
from repro.net.channel import Channel
from repro.nn.network import Network
from repro.profiling.device import DeviceModel, gtx1080_server
from repro.profiling.lookup import LookupTable, build_lookup_table
from repro.profiling.profiler import measure_communication
from repro.profiling.regression import CommLatencyModel

__all__ = ["PlanResult", "OnDeviceScheduler"]

#: Calibration payload sizes (bytes): spans raw inputs down to logit vectors.
CALIBRATION_SIZES = [4e3, 2e4, 1e5, 3e5, 6e5, 1.2e6]


class _RegressionChannel:
    """Duck-typed Channel whose uplink_time comes from the fitted regression."""

    def __init__(self, model: CommLatencyModel, bandwidth_bps: float):
        self._model = model
        self.uplink_bps = bandwidth_bps

    def uplink_time(self, payload_bytes: float) -> float:
        return self._model.predict(payload_bytes, self.uplink_bps)

    def cache_token(self) -> tuple:
        """Defining values for the planning engine's channel fingerprint.

        Two regression channels with the same fitted coefficients and
        bandwidth price uploads identically, so they may share cached
        cost tables even though the objects differ per ``plan()`` call.
        """
        return ("regression", self._model.w0, self._model.w1, self.uplink_bps)


@dataclass(frozen=True)
class PlanResult:
    """A schedule plus the scheduler's own decision latency."""

    schedule: Schedule
    overhead_s: float


@dataclass
class OnDeviceScheduler:
    """Loads estimators once, then plans with negligible per-call cost.

    Planning goes through a :class:`~repro.engine.PlanningEngine`, so
    repeated ``plan()`` calls for the same (network, bandwidth) reuse
    the memoized cost tables — the structure phase is paid once per
    calibration, matching the paper's "estimators loaded at start"
    deployment story.
    """

    mobile: DeviceModel
    cloud: DeviceModel = field(default_factory=gtx1080_server)
    lookup: LookupTable | None = None
    comm_model: CommLatencyModel | None = None
    engine: PlanningEngine | None = None

    def __post_init__(self) -> None:
        if self.engine is None:
            self.engine = PlanningEngine(mobile=self.mobile, cloud=self.cloud)

    def calibrate(
        self,
        networks: list[Network],
        channel: Channel,
        seed: int | np.random.Generator | None = None,
        noise: float = 0.05,
    ) -> None:
        """Build the lookup table and train the communication regression.

        Mirrors the paper's offline phase: profile each DNN once on the
        mobile device; time a handful of transfers to fit (w0, w1).
        """
        self.lookup = build_lookup_table(networks, self.mobile, seed=seed, noise=noise)
        samples = measure_communication(channel, CALIBRATION_SIZES, seed=seed, noise=noise)
        self.comm_model = CommLatencyModel.fit(samples)

    @property
    def is_calibrated(self) -> bool:
        return self.lookup is not None and self.comm_model is not None

    def plan(
        self,
        network: Network,
        n: int,
        bandwidth_bps: float,
        scheme: str = "JPS",
    ) -> PlanResult:
        """Produce a schedule for ``n`` jobs of ``network`` at the given rate.

        ``scheme``: "JPS", "PO", "LO" or "CO". All schemes run on the
        *estimated* cost table, so comparisons include estimation error
        symmetrically — as they do on the testbed.
        """
        if not self.is_calibrated:
            raise RuntimeError("scheduler is not calibrated; call calibrate() first")
        assert self.lookup is not None and self.comm_model is not None
        if not self.lookup.covers(network):
            raise KeyError(
                f"lookup table has no entries for {network.name!r}; "
                "include it in calibrate()"
            )

        assert self.engine is not None
        started = perf_counter()
        predicted_channel = _RegressionChannel(self.comm_model, bandwidth_bps)
        predictor = self.lookup.predictor_for(network.name)
        # predictor_for returns a fresh closure per call; key the caches by
        # the lookup table's identity instead so recalibration invalidates
        # but repeated plans hit
        predictor_key = ("lookup", id(self.lookup), network.name)
        if scheme == "JPS":
            schedule = self.engine.plan(
                network, n, predicted_channel,  # type: ignore[arg-type]
                predictor=predictor, predictor_key=predictor_key,
            )
        elif scheme in ("PO", "LO", "CO"):
            # baselines historically plan on the linearized table even for
            # general DAGs; keep that behaviour (the engine memoizes it)
            table = self.engine.line_table(
                network, predicted_channel,  # type: ignore[arg-type]
                predictor=predictor, predictor_key=predictor_key,
            )
            builder = {"PO": partition_only, "LO": local_only, "CO": cloud_only}[scheme]
            schedule = builder(table, n)
        else:
            raise ValueError(f"unknown scheme {scheme!r} (use JPS, PO, LO or CO)")
        overhead = perf_counter() - started
        return PlanResult(schedule=schedule, overhead_s=overhead)
