"""System prototype: serialization, simulated RPC, client/server, scheduler."""

from repro.runtime.client import JobReport, MobileClient, RuntimeResult
from repro.runtime.messages import InferenceReply, InferenceRequest
from repro.runtime.rpc import RpcStats, SimulatedRpc, VirtualClock
from repro.runtime.scheduler_runtime import OnDeviceScheduler, PlanResult
from repro.runtime.serialization import (
    SerializationError,
    deserialize_tensor,
    serialize_tensor,
    serialized_size,
)
from repro.runtime.server import CloudServer
from repro.runtime.system import OffloadingSystem, SystemRun

__all__ = [
    "CloudServer",
    "InferenceReply",
    "InferenceRequest",
    "JobReport",
    "MobileClient",
    "OffloadingSystem",
    "OnDeviceScheduler",
    "PlanResult",
    "RpcStats",
    "RuntimeResult",
    "SerializationError",
    "SimulatedRpc",
    "SystemRun",
    "VirtualClock",
    "deserialize_tensor",
    "serialize_tensor",
    "serialized_size",
]
