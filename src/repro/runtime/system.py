"""End-to-end facade wiring the whole prototype together.

:class:`OffloadingSystem` is the single object the examples use: it
builds the device models, the shaped channel, the cloud server, the
mobile client, and the calibrated on-device scheduler, and exposes
``run(model, n, scheme)`` → plan on estimates, execute on ground truth,
report both. This is the offline twin of the paper's Raspberry-Pi + PC
deployment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.bandwidth import BandwidthPreset, TrafficShaper
from repro.net.channel import Channel
from repro.nn.network import Network
from repro.profiling.device import DeviceModel, gtx1080_server, raspberry_pi_4
from repro.runtime.client import MobileClient, RuntimeResult
from repro.runtime.scheduler_runtime import OnDeviceScheduler
from repro.runtime.server import CloudServer
from repro.utils.validation import require_positive

__all__ = ["SystemRun", "OffloadingSystem"]


@dataclass(frozen=True)
class SystemRun:
    """One experiment: what was planned and what actually happened."""

    model: str
    scheme: str
    n: int
    planned_makespan: float
    executed_makespan: float
    scheduler_overhead_s: float
    result: RuntimeResult

    @property
    def average_completion(self) -> float:
        return self.executed_makespan / self.n

    @property
    def plan_error(self) -> float:
        """Relative planning error against the executed makespan."""
        if self.executed_makespan == 0:
            return 0.0
        return abs(self.planned_makespan - self.executed_makespan) / self.executed_makespan


@dataclass
class OffloadingSystem:
    """Mobile device + channel + cloud server + calibrated scheduler."""

    channel: Channel
    mobile: DeviceModel = field(default_factory=raspberry_pi_4)
    cloud: DeviceModel = field(default_factory=gtx1080_server)
    seed: int = 0

    def __post_init__(self) -> None:
        self.server = CloudServer(device=self.cloud)
        self.client = MobileClient(
            device=self.mobile, channel=self.channel, server=self.server
        )
        self.scheduler = OnDeviceScheduler(mobile=self.mobile, cloud=self.cloud)
        self._networks: list[Network] = []

    @classmethod
    def at_preset(cls, preset: BandwidthPreset, **kwargs) -> "OffloadingSystem":
        return cls(channel=Channel(shaper=TrafficShaper.from_preset(preset)), **kwargs)

    def deploy(self, *networks: Network) -> None:
        """Install models on client and server and calibrate estimators."""
        for network in networks:
            self.client.register(network)
            self._networks.append(network)
        self.scheduler.calibrate(self._networks, self.channel, seed=self.seed)

    def set_uplink_mbps(self, value: float) -> None:
        """Reshape the link (the wondershaper step between trials)."""
        self.channel.shaper.set_uplink_mbps(value)

    def run(self, model: str, n: int, scheme: str = "JPS") -> SystemRun:
        """Plan on estimates, execute with ground-truth costs, report."""
        require_positive(n, "n")
        network = self.client._network(model)
        planned = self.scheduler.plan(
            network, n, bandwidth_bps=self.channel.uplink_bps, scheme=scheme
        )
        executed = self.client.run_schedule(planned.schedule)
        return SystemRun(
            model=model,
            scheme=scheme,
            n=n,
            planned_makespan=planned.schedule.makespan,
            executed_makespan=executed.makespan,
            scheduler_overhead_s=planned.overhead_s,
            result=executed,
        )
