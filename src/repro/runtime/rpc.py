"""Simulated RPC transport with a virtual clock.

Bridges the client and server objects through the
:class:`repro.net.Channel` model: a call charges the uplink for the
*actual encoded request size*, lets the server handle the message, then
charges the downlink for the reply. Timestamps come from a shared
:class:`VirtualClock` rather than wall time, so experiments are fast and
deterministic while preserving the testbed's timing protocol (the
client-side timer spans send → reply, and subtracting the server's
reported compute time yields the pure communication delay — exactly how
§6.1 trains the communication regression).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.channel import Channel
from repro.runtime.messages import InferenceReply, InferenceRequest
from repro.runtime.server import CloudServer

__all__ = ["VirtualClock", "RpcStats", "SimulatedRpc"]


@dataclass
class VirtualClock:
    """A monotonically advancing simulated clock."""

    now: float = 0.0

    def advance(self, delta: float) -> float:
        if delta < 0:
            raise ValueError(f"cannot advance clock by {delta}")
        self.now += delta
        return self.now


@dataclass(frozen=True)
class RpcStats:
    """Timing breakdown of one round trip (the client's timer view)."""

    request_bytes: int
    reply_bytes: int
    send_time: float
    receive_time: float
    server_compute_time: float

    @property
    def round_trip(self) -> float:
        return self.receive_time - self.send_time

    @property
    def communication_delay(self) -> float:
        """``td - tc``: what the paper's regression trains on."""
        return self.round_trip - self.server_compute_time


@dataclass
class SimulatedRpc:
    """Client-side stub calling a :class:`CloudServer` over a channel."""

    channel: Channel
    server: CloudServer
    clock: VirtualClock = field(default_factory=VirtualClock)
    call_log: list[RpcStats] = field(default_factory=list)

    def call(self, request: InferenceRequest) -> InferenceReply:
        """One blocking round trip; advances the virtual clock."""
        send_time = self.clock.now
        self.clock.advance(self.channel.uplink_time(len(request.payload)))
        reply = self.server.handle(request)
        self.clock.advance(reply.server_compute_time)
        self.clock.advance(self.channel.downlink_time(len(reply.payload)))
        stats = RpcStats(
            request_bytes=len(request.payload),
            reply_bytes=len(reply.payload),
            send_time=send_time,
            receive_time=self.clock.now,
            server_compute_time=reply.server_compute_time,
        )
        self.call_log.append(stats)
        return reply
