"""Request/reply records — the gRPC message analog of §6.1.

The reply carries the server's computation time, which is how the
testbed's client separates communication delay from cloud compute when
training its regression model; the runtime prototype preserves that
protocol detail so the same estimation pipeline works on its traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["InferenceRequest", "InferenceReply"]


@dataclass(frozen=True)
class InferenceRequest:
    """Client → server: the serialized cut tensor plus routing info."""

    job_id: int
    model: str
    cut_frontier: tuple[str, ...]  # layer(s) whose outputs are attached
    payload: bytes

    def __post_init__(self) -> None:
        if not self.model:
            raise ValueError("model name must be non-empty")
        if not isinstance(self.payload, (bytes, bytearray)):
            raise TypeError("payload must be bytes")

    @property
    def payload_bytes(self) -> int:
        return len(self.payload)


@dataclass(frozen=True)
class InferenceReply:
    """Server → client: the classification result and server timing."""

    job_id: int
    payload: bytes
    server_compute_time: float

    def __post_init__(self) -> None:
        if self.server_compute_time < 0:
            raise ValueError("server_compute_time must be >= 0")

    @property
    def payload_bytes(self) -> int:
        return len(self.payload)
