"""The cloud server: receives cut tensors, runs the remaining layers.

The offline analog of the PC-side gRPC service. "Running" a layer means
advancing the server's accounted compute time by the device model's
prediction and propagating tensor shapes — the data content is not
needed by any downstream consumer, but shapes, byte counts and the
mobile/cloud hand-off protocol are all exercised for real.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.network import Network
from repro.profiling.device import DeviceModel
from repro.runtime.messages import InferenceReply, InferenceRequest
from repro.runtime.serialization import deserialize_tensor, serialize_tensor

__all__ = ["CloudServer"]


@dataclass
class CloudServer:
    """Holds the pre-cut server-side model halves (§6.1: models are
    "pre-cut at all possible partition points and initialized")."""

    device: DeviceModel
    networks: dict[str, Network] = field(default_factory=dict)
    requests_served: int = 0
    total_compute_time: float = 0.0

    def register(self, network: Network) -> None:
        """Make a model available for server-side completion."""
        self.networks[network.name] = network

    def handle(self, request: InferenceRequest) -> InferenceReply:
        """Execute the layers downstream of the request's cut frontier."""
        try:
            network = self.networks[request.model]
        except KeyError:
            raise KeyError(
                f"model {request.model!r} not initialized on the server; "
                f"registered: {sorted(self.networks)}"
            ) from None

        tensor = deserialize_tensor(request.payload)  # validates the wire format

        graph = network.graph
        frontier = set(request.cut_frontier)
        unknown = frontier - set(graph.node_ids)
        if unknown:
            raise ValueError(f"cut frontier references unknown layers {sorted(unknown)}")

        # the mobile side computed the frontier and everything before it
        mobile_side: set[str] = set(frontier)
        for node in frontier:
            mobile_side |= graph.ancestors(node)

        compute_time = 0.0
        for node_id in graph.topological_order():
            if node_id in mobile_side:
                continue
            compute_time += self.device.layer_time(network.node(node_id))

        self.requests_served += 1
        self.total_compute_time += compute_time

        result = np.zeros(network.output_shape, dtype=np.float32)
        del tensor  # consumed; only its shape/bytes mattered
        return InferenceReply(
            job_id=request.job_id,
            payload=serialize_tensor(result),
            server_compute_time=compute_time,
        )
