"""The mobile client: executes planned schedules with real message sizes.

Two execution paths, mirroring how the testbed is used:

* :meth:`MobileClient.run_job` — one blocking inference round trip
  through :class:`~repro.runtime.rpc.SimulatedRpc` (load input →
  compute the mobile half → serialize → request → reply). Used by the
  quickstart example and for calibrating the communication regression.
* :meth:`MobileClient.run_schedule` — pipelined execution of a whole
  schedule on the discrete-event engine, with stage durations derived
  from ground-truth device models and the *actual serialized* sizes of
  the cut tensors (so planning error — the scheduler used estimates —
  shows up as a plan-vs-execution gap in the report).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.plans import JobPlan, Schedule
from repro.dag.cuts import cut_edge_tails
from repro.net.channel import Channel
from repro.nn.network import Network
from repro.profiling.device import DeviceModel
from repro.runtime.messages import InferenceRequest
from repro.runtime.rpc import SimulatedRpc
from repro.runtime.serialization import serialize_tensor
from repro.runtime.server import CloudServer
from repro.sim.pipeline import PipelineResult, simulate_schedule

__all__ = ["JobReport", "RuntimeResult", "MobileClient"]


@dataclass(frozen=True)
class JobReport:
    """Planned vs executed stage lengths of one job."""

    job_id: int
    cut_label: str
    planned_compute: float
    actual_compute: float
    planned_comm: float
    actual_comm: float
    payload_bytes: int


@dataclass
class RuntimeResult:
    """Outcome of executing one schedule end to end."""

    schedule: Schedule
    pipeline: PipelineResult
    reports: list[JobReport]

    @property
    def makespan(self) -> float:
        return self.pipeline.makespan

    @property
    def planned_makespan(self) -> float:
        return self.schedule.makespan

    @property
    def max_stage_error(self) -> float:
        """Largest relative plan-vs-execution stage discrepancy."""
        worst = 0.0
        for r in self.reports:
            for planned, actual in ((r.planned_compute, r.actual_compute),
                                    (r.planned_comm, r.actual_comm)):
                if actual > 0:
                    worst = max(worst, abs(planned - actual) / actual)
        return worst


@dataclass
class MobileClient:
    """The Raspberry-Pi side of the prototype."""

    device: DeviceModel
    channel: Channel
    server: CloudServer
    networks: dict[str, Network] = field(default_factory=dict)

    def register(self, network: Network) -> None:
        self.networks[network.name] = network
        self.server.register(network)

    def _network(self, name: str) -> Network:
        try:
            return self.networks[name]
        except KeyError:
            raise KeyError(
                f"model {name!r} not loaded on the client; loaded: {sorted(self.networks)}"
            ) from None

    # ------------------------------------------------------------------
    def _execution_facts(self, network: Network, plan: JobPlan) -> tuple[float, float, int, tuple[str, ...]]:
        """(actual compute, actual comm, payload bytes, frontier) of a plan."""
        if plan.mobile_nodes is None:
            raise ValueError(
                f"job {plan.job_id} has no mobile node set; build plans from a "
                "graph-backed cost table to execute them"
            )
        graph = network.graph
        compute = sum(
            self.device.layer_time(network.node(v)) for v in plan.mobile_nodes
        )
        frontier = tuple(cut_edge_tails(graph, plan.mobile_nodes))
        if len(plan.mobile_nodes) == len(graph):
            payload = b""
        else:
            tensors = [
                np.zeros(network.node(v).output_shape, dtype=np.float32)
                for v in frontier
            ]
            payload = b"".join(serialize_tensor(t) for t in tensors)
        comm = self.channel.uplink_time(len(payload)) if payload else 0.0
        return compute, comm, len(payload), frontier

    def run_job(self, rpc: SimulatedRpc, plan: JobPlan) -> float:
        """One sequential round trip; returns its end-to-end latency."""
        network = self._network(plan.model)
        compute, _, _, frontier = self._execution_facts(network, plan)
        start = rpc.clock.now
        rpc.clock.advance(compute)
        if len(plan.mobile_nodes or ()) != len(network.graph):
            tensors = [
                np.zeros(network.node(v).output_shape, dtype=np.float32)
                for v in frontier
            ]
            request = InferenceRequest(
                job_id=plan.job_id,
                model=plan.model,
                cut_frontier=frontier,
                payload=b"".join(serialize_tensor(t) for t in tensors),
            )
            rpc.call(request)
        return rpc.clock.now - start

    def run_schedule(self, schedule: Schedule, include_cloud: bool = True) -> RuntimeResult:
        """Pipelined execution of a planned schedule (ground-truth costs)."""
        reports: list[JobReport] = []
        executed_plans: list[JobPlan] = []
        for plan in schedule.jobs:
            network = self._network(plan.model)
            compute, comm, payload_bytes, _ = self._execution_facts(network, plan)
            reports.append(
                JobReport(
                    job_id=plan.job_id,
                    cut_label=plan.cut_label,
                    planned_compute=plan.compute_time,
                    actual_compute=compute,
                    planned_comm=plan.comm_time,
                    actual_comm=comm,
                    payload_bytes=payload_bytes,
                )
            )
            executed_plans.append(
                replace(plan, compute_time=compute, comm_time=comm)
            )
        executed = Schedule(
            jobs=tuple(executed_plans),
            makespan=schedule.makespan,  # planned value; pipeline yields actual
            method=schedule.method,
            metadata=dict(schedule.metadata),
        )
        pipeline = simulate_schedule(executed, include_cloud=include_cloud)
        return RuntimeResult(schedule=schedule, pipeline=pipeline, reports=reports)
