"""Tensor serialization — the offline analog of ``torch.save`` to BytesIO.

The testbed serializes intermediate tensors into an in-memory buffer
before handing them to gRPC; the transfer time therefore depends on the
*encoded* size (raw data + header), not the tensor's nominal element
count. This module performs real byte-level encoding so the runtime
prototype's message sizes — and thus its communication times — include
the same framing overhead.

Format: magic, version, dtype tag, ndim, shape (u32 little-endian each),
then the C-contiguous raw buffer.

Schedules cross the wire too (client ships its plan to the server for
admission/telemetry): :func:`serialize_schedule` frames the canonical
:meth:`repro.core.plans.Schedule.to_dict` JSON document — one encoding
shared with the CLI's ``--json`` output, not a runtime-private dialect.
"""

from __future__ import annotations

import json
import struct

import numpy as np

from repro.core.plans import Schedule

__all__ = [
    "serialize_tensor",
    "deserialize_tensor",
    "serialized_size",
    "serialize_schedule",
    "deserialize_schedule",
    "SerializationError",
]

_MAGIC = b"RPT1"
_DTYPES: dict[str, int] = {"float32": 1, "float64": 2, "int32": 3, "int64": 4, "uint8": 5}
_DTYPE_NAMES = {v: k for k, v in _DTYPES.items()}
_HEADER = struct.Struct("<4sBBH")  # magic, version, dtype tag, ndim


class SerializationError(ValueError):
    """Raised on malformed payloads or unsupported dtypes."""


def serialize_tensor(array: np.ndarray) -> bytes:
    """Encode ``array`` into the wire format."""
    dtype_name = array.dtype.name
    if dtype_name not in _DTYPES:
        raise SerializationError(f"unsupported dtype {dtype_name!r}")
    if array.ndim > 0xFFFF:
        raise SerializationError("too many dimensions")
    data = np.ascontiguousarray(array)
    header = _HEADER.pack(_MAGIC, 1, _DTYPES[dtype_name], array.ndim)
    dims = struct.pack(f"<{array.ndim}I", *array.shape)
    return header + dims + data.tobytes()


def deserialize_tensor(payload: bytes) -> np.ndarray:
    """Decode a payload produced by :func:`serialize_tensor`."""
    if len(payload) < _HEADER.size:
        raise SerializationError("payload shorter than header")
    magic, version, dtype_tag, ndim = _HEADER.unpack_from(payload, 0)
    if magic != _MAGIC:
        raise SerializationError(f"bad magic {magic!r}")
    if version != 1:
        raise SerializationError(f"unsupported version {version}")
    if dtype_tag not in _DTYPE_NAMES:
        raise SerializationError(f"unknown dtype tag {dtype_tag}")
    offset = _HEADER.size
    try:
        shape = struct.unpack_from(f"<{ndim}I", payload, offset)
    except struct.error as exc:
        raise SerializationError("truncated shape header") from exc
    offset += 4 * ndim
    dtype = np.dtype(_DTYPE_NAMES[dtype_tag])
    expected = int(np.prod(shape)) * dtype.itemsize if ndim else dtype.itemsize
    body = payload[offset:]
    if len(body) != expected:
        raise SerializationError(
            f"body length {len(body)} does not match shape {shape} ({expected} bytes)"
        )
    return np.frombuffer(body, dtype=dtype).reshape(shape).copy()


_SCHEDULE_MAGIC = b"RPS1"


def serialize_schedule(schedule: Schedule) -> bytes:
    """Encode a schedule as magic + canonical JSON (UTF-8).

    The payload is exactly ``Schedule.to_dict()`` with sorted keys, so
    byte-identical schedules produce byte-identical payloads.
    """
    body = json.dumps(schedule.to_dict(), sort_keys=True).encode()
    return _SCHEDULE_MAGIC + body


def deserialize_schedule(payload: bytes) -> Schedule:
    """Decode a payload produced by :func:`serialize_schedule`."""
    if len(payload) < len(_SCHEDULE_MAGIC) or not payload.startswith(_SCHEDULE_MAGIC):
        raise SerializationError("not a serialized schedule (bad magic)")
    try:
        document = json.loads(payload[len(_SCHEDULE_MAGIC):])
    except json.JSONDecodeError as exc:
        raise SerializationError(f"malformed schedule JSON: {exc}") from exc
    try:
        return Schedule.from_dict(document)
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"invalid schedule document: {exc}") from exc


def serialized_size(shape: tuple[int, ...], dtype: str = "float32") -> int:
    """Wire size of a tensor without materializing it (planning use)."""
    if dtype not in _DTYPES:
        raise SerializationError(f"unsupported dtype {dtype!r}")
    itemsize = np.dtype(dtype).itemsize
    count = 1
    for d in shape:
        count *= d
    return _HEADER.size + 4 * len(shape) + count * itemsize
